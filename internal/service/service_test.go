// Admission-control and drain tests for the multi-tenant service: typed
// rejections at each bound, deadline pass-through, drain policies, and a
// goroutine-leak soak. Runs in an external package to exercise only the
// public surface.
package service_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/platform"
	"tez/internal/plugin"
	tezrt "tez/internal/runtime"
	"tez/internal/service"
)

// The gate processor blocks every task until the test opens the gate (or
// the attempt is killed), making queue occupancy deterministic.
var (
	gateMu      sync.Mutex
	gateCh      chan struct{}
	gateStarted chan struct{}
)

func init() {
	tezrt.RegisterProcessor("svc.gate", func() tezrt.Processor { return &gateProc{} })
	tezrt.RegisterProcessor("svc.noop", func() tezrt.Processor { return noopProc{} })
}

// resetGate arms a fresh gate; returns (open, started).
func resetGate() (chan struct{}, chan struct{}) {
	gateMu.Lock()
	defer gateMu.Unlock()
	gateCh = make(chan struct{})
	gateStarted = make(chan struct{}, 64)
	return gateCh, gateStarted
}

type gateProc struct{ stop <-chan struct{} }

func (p *gateProc) Initialize(ctx *tezrt.Context) error { p.stop = ctx.Stop; return nil }
func (p *gateProc) Run(map[string]tezrt.Input, map[string]tezrt.Output) error {
	gateMu.Lock()
	open, started := gateCh, gateStarted
	gateMu.Unlock()
	select {
	case started <- struct{}{}:
	default:
	}
	select {
	case <-open:
		return nil
	case <-p.stop:
		return errors.New("svc.gate: killed")
	}
}
func (p *gateProc) Close() error { return nil }

type noopProc struct{}

func (noopProc) Initialize(*tezrt.Context) error                           { return nil }
func (noopProc) Run(map[string]tezrt.Input, map[string]tezrt.Output) error { return nil }
func (noopProc) Close() error                                              { return nil }

func gateDAG(name string) *dag.DAG {
	d := dag.New(name)
	d.AddVertex("work", plugin.Desc("svc.gate", nil), 1)
	return d
}

func noopDAG(name string) *dag.DAG {
	d := dag.New(name)
	d.AddVertex("work", plugin.Desc("svc.noop", nil), 1)
	return d
}

// TestTypedRejections drives the service into each admission bound and
// asserts the rejection is classifiable with errors.Is.
func TestTypedRejections(t *testing.T) {
	open, started := resetGate()
	plat := platform.New(platform.Fast(4))
	defer plat.Stop()
	svc := service.New(plat, service.Config{
		Tenants: []service.TenantConfig{
			{Name: "t", QueueDepth: 2, Workers: 1},
			{Name: "u", QueueDepth: 8, Workers: 1},
		},
		MaxInFlight: 4,
	})
	defer svc.Close()

	// Fill tenant t: one running (worker occupied, gate closed) + two
	// queued = queue full.
	running, err := svc.Submit("t", gateDAG("run"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first DAG never started")
	}
	var queued []*service.Submission
	for i := 0; i < 2; i++ {
		sub, err := svc.Submit("t", gateDAG(fmt.Sprintf("q%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, sub)
	}
	if _, err := svc.Submit("t", gateDAG("over")); !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("queue-full submit: got %v, want ErrQueueFull", err)
	}

	// Global cap: in-flight is 3 (t); one more admits, the next sheds.
	sub4, err := svc.Submit("u", gateDAG("u0"))
	if err != nil {
		t.Fatal(err)
	}
	queued = append(queued, sub4)
	if _, err := svc.Submit("u", gateDAG("u1")); !errors.Is(err, service.ErrOverQuota) {
		t.Fatalf("over-cap submit: got %v, want ErrOverQuota", err)
	}

	// Unknown tenant.
	if _, err := svc.Submit("ghost", gateDAG("g")); !errors.Is(err, service.ErrUnknownTenant) {
		t.Fatalf("unknown tenant: got %v, want ErrUnknownTenant", err)
	}

	// Open the gate; everything admitted must finish cleanly.
	close(open)
	if res := running.Wait(); res.Status != am.DAGSucceeded {
		t.Fatalf("running DAG: %v (%v)", res.Status, res.Err)
	}
	for i, sub := range queued {
		if res := sub.Wait(); res.Status != am.DAGSucceeded {
			t.Fatalf("queued DAG %d: %v (%v)", i, res.Status, res.Err)
		}
	}

	// Draining rejects all new work.
	svc.Drain(service.DrainFinish)
	if _, err := svc.Submit("t", gateDAG("late")); !errors.Is(err, service.ErrDraining) {
		t.Fatalf("post-drain submit: got %v, want ErrDraining", err)
	}

	st := svc.Snapshot()
	if !st.Draining || st.InFlight != 0 {
		t.Fatalf("post-drain snapshot: draining=%v inFlight=%d", st.Draining, st.InFlight)
	}
	for _, ts := range st.Tenants {
		want := map[string]int64{"t": 3, "u": 1}[ts.Tenant]
		if ts.Admitted != want || ts.Succeeded != want {
			t.Errorf("tenant %s: admitted=%d succeeded=%d, want %d", ts.Tenant, ts.Admitted, ts.Succeeded, want)
		}
		if ts.Tenant == "t" && ts.RejectedQueueFull != 1 {
			t.Errorf("tenant t: rejectedQueueFull=%d, want 1", ts.RejectedQueueFull)
		}
		if ts.Tenant == "u" && ts.RejectedOverQuota != 1 {
			t.Errorf("tenant u: rejectedOverQuota=%d, want 1", ts.RejectedOverQuota)
		}
	}
}

// TestDynamicTenants: unknown tenants are materialised on first submit
// when enabled.
func TestDynamicTenants(t *testing.T) {
	resetGate()
	plat := platform.New(platform.Fast(4))
	defer plat.Stop()
	svc := service.New(plat, service.Config{AllowDynamicTenants: true})
	defer svc.Close()

	sub, err := svc.Submit("walk-in", noopDAG("d"))
	if err != nil {
		t.Fatal(err)
	}
	if res := sub.Wait(); res.Status != am.DAGSucceeded {
		t.Fatalf("dynamic tenant DAG: %v (%v)", res.Status, res.Err)
	}
	if _, err := svc.Submit("", noopDAG("d")); !errors.Is(err, service.ErrUnknownTenant) {
		t.Fatalf("empty tenant name: got %v, want ErrUnknownTenant", err)
	}
}

// TestSubmissionDeadline: a service-level deadline kills an overdue DAG
// with a result classifiable as am.ErrDeadlineExceeded, and the tenant
// default applies when no per-submission deadline is given.
func TestSubmissionDeadline(t *testing.T) {
	resetGate() // gate stays closed: the DAG can only end by deadline
	plat := platform.New(platform.Fast(4))
	defer plat.Stop()
	svc := service.New(plat, service.Config{
		Tenants: []service.TenantConfig{
			{Name: "t"},
			{Name: "slow", Deadline: 30 * time.Millisecond},
		},
	})
	defer svc.Close()

	sub, err := svc.Submit("t", gateDAG("overdue"), service.WithDeadline(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res := sub.Wait()
	if res.Status != am.DAGKilled || !errors.Is(res.Err, am.ErrDeadlineExceeded) {
		t.Fatalf("deadline result: %v (%v), want DAGKilled/ErrDeadlineExceeded", res.Status, res.Err)
	}

	sub, err = svc.Submit("slow", gateDAG("tenant-default"))
	if err != nil {
		t.Fatal(err)
	}
	res = sub.Wait()
	if res.Status != am.DAGKilled || !errors.Is(res.Err, am.ErrDeadlineExceeded) {
		t.Fatalf("tenant-default deadline: %v (%v), want DAGKilled/ErrDeadlineExceeded", res.Status, res.Err)
	}
}

// TestDrainKill: kill-policy drain fails queued work with ErrDraining and
// kills running DAGs; every admitted submission still reaches a terminal
// result.
func TestDrainKill(t *testing.T) {
	_, started := resetGate()
	plat := platform.New(platform.Fast(4))
	defer plat.Stop()
	svc := service.New(plat, service.Config{
		Tenants: []service.TenantConfig{{Name: "t", QueueDepth: 8, Workers: 1}},
	})

	var subs []*service.Submission
	run, err := svc.Submit("t", gateDAG("running"))
	if err != nil {
		t.Fatal(err)
	}
	subs = append(subs, run)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("running DAG never started")
	}
	for i := 0; i < 3; i++ {
		sub, err := svc.Submit("t", gateDAG(fmt.Sprintf("q%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}

	svc.Drain(service.DrainKill)
	for i, sub := range subs {
		res := sub.Wait()
		if res.Status != am.DAGKilled {
			t.Errorf("submission %d: status %v (%v), want DAGKilled", i, res.Status, res.Err)
		}
	}
	if st := svc.Snapshot(); st.InFlight != 0 {
		t.Fatalf("in-flight after kill-drain: %d", st.InFlight)
	}
	svc.Close()
}

// TestServiceSoak is the leak gate: a burst of multi-tenant load followed
// by a graceful drain must return the process to its pre-service
// goroutine count and leave the RM empty.
func TestServiceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	resetGate()
	plat := platform.New(platform.Fast(8))
	defer plat.Stop()
	time.Sleep(10 * time.Millisecond)
	before := runtime.NumGoroutine()

	svc := service.New(plat, service.Config{
		Tenants: []service.TenantConfig{
			{Name: "a", Weight: 2, Workers: 4},
			{Name: "b", Weight: 1, Workers: 4},
		},
		MaxInFlight: 64,
	})
	var wg sync.WaitGroup
	for _, tenant := range []string{"a", "b"} {
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(tenant string, c int) {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					sub, err := svc.Submit(tenant, noopDAG(fmt.Sprintf("soak-%d-%d", c, i)))
					if err != nil {
						continue // typed shed under burst: expected
					}
					sub.Wait()
				}
			}(tenant, c)
		}
	}
	wg.Wait()
	svc.Drain(service.DrainFinish)
	svc.Close()

	if used := plat.RM.UsedResources(); !used.IsZero() {
		t.Fatalf("RM still holds resources after drain: %v", used)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
