// Tenant-isolation chaos proof: seeded fault schedules scoped to tenant A
// (exec, launch and fetch faults keyed on A's tenant tag and run-id
// prefix) while tenant B runs the same wordcount workload clean on the
// shared cluster. For every seed, B's results must be byte-identical to a
// fault-free baseline and B's p99 latency must stay within the documented
// bound (max(25× clean p99, 1s) — generous for CI noise, tight enough to
// prove B is not starved by A's retry storms).
package service_test

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tez/internal/am"
	"tez/internal/chaos"
	"tez/internal/dag"
	"tez/internal/dfs"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	tezrt "tez/internal/runtime"
	"tez/internal/service"
)

func init() {
	library.RegisterMapFunc("svciso.tokenize", func(_, line []byte, out tezrt.KVWriter) error {
		for _, w := range strings.Fields(string(line)) {
			if err := out.Write([]byte(w), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	library.RegisterReduceFunc("svciso.sum", func(key []byte, values [][]byte, out tezrt.KVWriter) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		return out.Write(key, []byte(strconv.Itoa(total)))
	})
}

func seedWords(t *testing.T, plat *platform.Platform) {
	t.Helper()
	wr, err := library.CreateRecordFile(plat.FS, "/in/words", plat.FS.LiveNodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		line := fmt.Sprintf("tenant isolation dag %d vertex task %d shuffle fair share", i%5, i%11)
		if err := wr.Write(nil, []byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
}

// wcDAG builds a two-vertex wordcount over /in/words writing to outPath.
func wcDAG(name, outPath string) *dag.DAG {
	d := dag.New(name)
	tok := d.AddVertex("tokenize", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "svciso.tokenize"}), -1)
	tok.Sources = []dag.DataSource{{
		Name:        "words",
		Input:       plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{Paths: []string{"/in/words"}}),
	}}
	sum := d.AddVertex("sum", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "svciso.sum"}), 2)
	sum.Sinks = []dag.DataSink{{
		Name:      "counts",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: outPath}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: outPath}),
	}}
	d.Connect(tok, sum, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	return d
}

// canonCounts reads a wordcount output directory into a canonical
// "word=count" line set: the byte-comparison form (part-file layout is
// scheduling-dependent; the aggregated data must not be).
func canonCounts(t *testing.T, fs *dfs.FileSystem, out string) string {
	t.Helper()
	counts := map[string]int{}
	for _, f := range fs.List(out + "/part-") {
		blob, err := fs.ReadFile(f, "")
		if err != nil {
			t.Fatal(err)
		}
		r := library.NewPaddedReader(blob)
		for r.Next() {
			n, err := strconv.Atoi(string(r.Value()))
			if err != nil {
				t.Fatal(err)
			}
			counts[string(r.Key())] += n
		}
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	}
	lines := make([]string, 0, len(counts))
	for w, n := range counts {
		lines = append(lines, fmt.Sprintf("%s=%d", w, n))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

const isoBDAGs = 5

// runTenantB submits tenant B's wordcount workload and returns the
// canonical result of each DAG plus B's p99 latency.
func runTenantB(t *testing.T, svc *service.Service, plat *platform.Platform, tag string) ([]string, time.Duration) {
	t.Helper()
	var results []string
	for i := 0; i < isoBDAGs; i++ {
		out := fmt.Sprintf("/out/b-%s-%d", tag, i)
		sub, err := svc.Submit("B", wcDAG("wc", out))
		if err != nil {
			t.Fatalf("tenant B submit %d: %v", i, err)
		}
		if res := sub.Wait(); res.Status != am.DAGSucceeded {
			t.Fatalf("tenant B DAG %d: %v (%v)", i, res.Status, res.Err)
		}
		results = append(results, canonCounts(t, plat.FS, out))
	}
	var p99 time.Duration
	for _, ts := range svc.Snapshot().Tenants {
		if ts.Tenant == "B" {
			p99 = ts.Latency.P99
		}
	}
	return results, p99
}

func isoServiceConfig() service.Config {
	return service.Config{
		Tenants: []service.TenantConfig{
			{Name: "A", Weight: 1, Workers: 2, QueueDepth: 8},
			{Name: "B", Weight: 1, Workers: 2, QueueDepth: 8},
		},
		Session: am.Config{MaxTaskAttempts: 8},
	}
}

// TestTenantIsolationUnderChaos: five seeded fault schedules scoped to
// tenant A; tenant B's results stay byte-identical to the fault-free
// baseline and B's p99 stays inside the documented bound.
func TestTenantIsolationUnderChaos(t *testing.T) {
	// Fault-free baseline: tenant B alone on a clean platform.
	basePlat := platform.New(platform.Fast(8))
	seedWords(t, basePlat)
	baseSvc := service.New(basePlat, isoServiceConfig())
	baseline, cleanP99 := runTenantB(t, baseSvc, basePlat, "base")
	baseSvc.Close()
	basePlat.Stop()
	for i, r := range baseline {
		if r == "" {
			t.Fatalf("baseline DAG %d produced no output", i)
		}
		if r != baseline[0] {
			t.Fatalf("baseline not deterministic: DAG %d differs", i)
		}
	}
	// Documented isolation bound (DESIGN.md §11): under tenant-A chaos,
	// B's p99 must stay within max(25× clean p99, 1s).
	bound := 25 * cleanP99
	if bound < time.Second {
		bound = time.Second
	}

	for _, seed := range []int64{11, 12, 13, 14, 15} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			plane := chaos.New(seed, chaos.Spec{
				ScopeTenantPrefix:  "A",
				TransientFetchProb: 0.25,
				FetchDataLostProb:  0.05,
				LaunchFailProb:     0.08,
				TaskFaultProb:      0.08,
				StepSpacing:        2,
			})
			cfg := platform.Fast(8)
			cfg.Chaos = plane
			plat := platform.New(cfg)
			defer plat.Stop()
			seedWords(t, plat)
			svc := service.New(plat, isoServiceConfig())
			defer svc.Close()

			// Tenant A hammers the cluster with the same workload, eating
			// scoped faults, until B's run completes.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < 2; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						sub, err := svc.Submit("A", wcDAG("wc", fmt.Sprintf("/out/a-%d-%d", c, i)))
						if err != nil {
							time.Sleep(time.Millisecond)
							continue
						}
						sub.Wait() // A may fail under faults; isolation only protects B
					}
				}(c)
			}

			results, p99 := runTenantB(t, svc, plat, fmt.Sprintf("s%d", seed))
			close(stop)
			wg.Wait()

			for i, r := range results {
				if r != baseline[0] {
					t.Errorf("seed %d: tenant B DAG %d diverged from fault-free baseline", seed, i)
				}
			}
			if p99 > bound {
				t.Errorf("seed %d: tenant B p99 %v exceeds isolation bound %v (clean p99 %v)", seed, p99, bound, cleanP99)
			}
			var injected int64
			for _, n := range plane.Injected() {
				injected += n
			}
			if injected == 0 {
				t.Errorf("seed %d: no faults injected into tenant A — schedule proves nothing", seed)
			}
			t.Logf("seed %d: %d faults into A, B p99 %v (clean %v, bound %v)", seed, injected, p99, cleanP99, bound)
		})
	}
}
