package cluster

// The rack-sharded node index. place() used to walk the full nodeList per
// request — O(nodes) with a per-node mutex acquisition, the dominant cost
// of a scheduling pass at 10k nodes. The index keeps one shard per rack
// with nodes sorted by (free memory desc, NodeID asc); the head of a shard
// is therefore both an O(1) "can anything here fit?" capacity bound and
// the shard's argmax for the least-loaded placement policy. A whole-
// cluster placement inspects one shard head per rack instead of every
// node.
//
// Everything in this file is guarded by rm.mu. The scheduler reads the
// Node.schedAvail mirror, never n.used directly, so placement takes no
// node locks at all; every mutation of node state (allocate, stop, fail,
// restore) holds rm.mu and keeps the mirror in sync.

// rackShard holds one rack's live nodes in placement order.
type rackShard struct {
	rack  string
	nodes []*Node // sorted by (schedAvail.MemoryMB desc, ID asc)
}

// nodeLess is the shard sort order: most free memory first, NodeID as the
// deterministic tiebreak — exactly the old linear scan's moreAvailable
// argmax, so placement decisions are unchanged.
func nodeLess(a, b *Node) bool {
	if a.schedAvail.MemoryMB != b.schedAvail.MemoryMB {
		return a.schedAvail.MemoryMB > b.schedAvail.MemoryMB
	}
	return a.ID < b.ID
}

// insert adds n (not currently in any shard) at its sorted position.
func (s *rackShard) insert(n *Node) {
	i := len(s.nodes)
	for i > 0 && nodeLess(n, s.nodes[i-1]) {
		i--
	}
	s.nodes = append(s.nodes, nil)
	copy(s.nodes[i+1:], s.nodes[i:])
	s.nodes[i] = n
	n.shard = s
	for ; i < len(s.nodes); i++ {
		s.nodes[i].shardIdx = i
	}
}

// remove takes n out of the shard (node failure / decommission).
func (s *rackShard) remove(n *Node) {
	i := n.shardIdx
	copy(s.nodes[i:], s.nodes[i+1:])
	s.nodes = s.nodes[:len(s.nodes)-1]
	for ; i < len(s.nodes); i++ {
		s.nodes[i].shardIdx = i
	}
	n.shard = nil
}

// fix restores n's sorted position after its schedAvail changed; a single
// container charge moves a node only a short distance, so this is a local
// bubble, not a re-sort.
func (s *rackShard) fix(n *Node) {
	i := n.shardIdx
	for i > 0 && nodeLess(n, s.nodes[i-1]) {
		s.nodes[i] = s.nodes[i-1]
		s.nodes[i].shardIdx = i
		i--
	}
	for i < len(s.nodes)-1 && nodeLess(s.nodes[i+1], n) {
		s.nodes[i] = s.nodes[i+1]
		s.nodes[i].shardIdx = i
		i++
	}
	s.nodes[i] = n
	n.shardIdx = i
}

// best returns the shard's preferred fitting node, or nil. The sort order
// makes the first memory-fitting, non-excluded node the argmax; once the
// head (or any node — the order is by memory) cannot fit by memory,
// nothing deeper can, so full shards are rejected in O(1).
func (s *rackShard) best(res Resource, excluded map[NodeID]bool) *Node {
	for _, n := range s.nodes {
		if n.schedAvail.MemoryMB < res.MemoryMB {
			return nil
		}
		if res.FitsIn(n.schedAvail) && !excluded[n.ID] {
			return n
		}
	}
	return nil
}

// chargeNodeLocked commits res onto n: the node's own accounting (under
// n.mu, for readers like Available) plus the scheduler mirror and shard
// position. Caller holds rm.mu.
func (rm *ResourceManager) chargeNodeLocked(n *Node, c *Container) {
	n.mu.Lock()
	n.used = n.used.Add(c.Resource)
	n.containers[c.ID] = c
	n.mu.Unlock()
	n.schedAvail = n.schedAvail.Sub(c.Resource)
	if n.shard != nil {
		n.shard.fix(n)
	}
	rm.usedTotal = rm.usedTotal.Add(c.Resource)
}

// unchargeNodeLocked reverses chargeNodeLocked if (and only if) the
// container is still registered on the node; it reports whether it was.
// Caller holds rm.mu.
func (rm *ResourceManager) unchargeNodeLocked(n *Node, c *Container) bool {
	n.mu.Lock()
	_, held := n.containers[c.ID]
	if held {
		delete(n.containers, c.ID)
		n.used = n.used.Sub(c.Resource)
	}
	n.mu.Unlock()
	if !held {
		return false
	}
	n.schedAvail = n.schedAvail.Add(c.Resource)
	if n.shard != nil {
		n.shard.fix(n)
	}
	rm.usedTotal = rm.usedTotal.Sub(c.Resource)
	return true
}
