// Tenant-group scheduling tests: hard quotas at grant time, weighted
// fair-share preemption between tenants, and the starvation-threshold
// gate.
package cluster

import (
	"testing"
	"time"
)

// TestTenantQuota: a tenant's apps collectively stop receiving grants at
// the quota even with pending demand, other apps absorb the rest, and
// raising the quota releases the withheld demand.
func TestTenantQuota(t *testing.T) {
	rm := New(testConfig()) // 4 nodes × 4096MB = 16384 total
	defer rm.Stop()
	rm.SetTenant("capped", 1, 8192)

	capped := rm.SubmitTenant("capped-app", "capped")
	defer capped.Unregister()
	for i := 0; i < 16; i++ {
		capped.Request(&ContainerRequest{Resource: Resource{1024, 1}})
	}
	deadline := time.Now().Add(time.Second)
	for capped.Allocated().MemoryMB < 8192 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Give the scheduler time to (wrongly) grant past the quota.
	time.Sleep(20 * time.Millisecond)
	if got := capped.Allocated().MemoryMB; got != 8192 {
		t.Fatalf("capped tenant holds %d MB, want exactly quota 8192", got)
	}
	if alloc, quota := rm.TenantUsage("capped"); alloc != 8192 || quota != 8192 {
		t.Fatalf("TenantUsage = (%d, %d), want (8192, 8192)", alloc, quota)
	}
	if pending := capped.PendingRequests(); pending != 8 {
		t.Fatalf("pending = %d, want 8 withheld by quota", pending)
	}

	// The withheld capacity is available to everyone else.
	other := rm.Submit("other")
	defer other.Unregister()
	for i := 0; i < 8; i++ {
		other.Request(&ContainerRequest{Resource: Resource{1024, 1}})
	}
	deadline = time.Now().Add(time.Second)
	for other.Allocated().MemoryMB < 8192 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := other.Allocated().MemoryMB; got != 8192 {
		t.Fatalf("untenanted app got %d MB alongside the capped tenant, want 8192", got)
	}

	// Lifting the quota lets the tenant's queued demand proceed once
	// capacity frees.
	other.Unregister()
	rm.SetTenant("capped", 1, 0)
	deadline = time.Now().Add(time.Second)
	for capped.Allocated().MemoryMB < 16384 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := capped.Allocated().MemoryMB; got != 16384 {
		t.Fatalf("after quota lift: %d MB, want 16384", got)
	}
}

// TestTenantWeightedPreemption: when a high-weight tenant starves, the
// preemptor computes weighted shares across tenants and claws back the
// over-share tenant's newest containers — beyond the 50/50 split that
// unweighted fairness would allow.
func TestTenantWeightedPreemption(t *testing.T) {
	cfg := testConfig()
	cfg.FairPreemption = true
	cfg.PreemptionInterval = time.Millisecond
	rm := New(cfg)
	defer rm.Stop()
	rm.SetTenant("hog", 1, 0)
	rm.SetTenant("vip", 3, 0)

	hog := rm.SubmitTenant("hog-app", "hog")
	defer hog.Unregister()
	for i := 0; i < 16; i++ {
		hog.Request(&ContainerRequest{Resource: Resource{1024, 1}})
	}
	deadline := time.Now().Add(time.Second)
	for hog.Allocated().MemoryMB < 16384 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	vip := rm.SubmitTenant("vip-app", "vip")
	defer vip.Unregister()
	for i := 0; i < 16; i++ {
		vip.Request(&ContainerRequest{Resource: Resource{1024, 1}})
	}

	// Weighted shares over 16384 MB: vip (w=3) 12288, hog (w=1) 4096.
	// Unweighted fairness would stop at 8192 — crossing it proves the
	// weights drive preemption.
	deadline = time.Now().Add(2 * time.Second)
	for vip.Allocated().MemoryMB < 12288 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := vip.Allocated().MemoryMB; got < 12288 {
		t.Fatalf("vip (weight 3) holds %d MB, want its 12288 weighted share", got)
	}
	if got := hog.Allocated().MemoryMB; got > 4096 {
		t.Fatalf("hog (weight 1) still holds %d MB, want ≤ its 4096 weighted share", got)
	}
}

// TestPreemptionStarvationThreshold: with a starvation threshold set,
// momentary imbalance does not preempt — only sustained starvation does.
func TestPreemptionStarvationThreshold(t *testing.T) {
	cfg := testConfig()
	cfg.FairPreemption = true
	cfg.PreemptionInterval = time.Millisecond
	cfg.PreemptionStarvation = 100 * time.Millisecond
	rm := New(cfg)
	defer rm.Stop()

	hog := rm.SubmitTenant("hog-app", "hog")
	defer hog.Unregister()
	for i := 0; i < 4; i++ {
		hog.Request(&ContainerRequest{Resource: Resource{4096, 4}})
	}
	deadline := time.Now().Add(time.Second)
	for hog.Allocated().MemoryMB < 16384 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	late := rm.SubmitTenant("late-app", "late")
	defer late.Unregister()
	late.Request(&ContainerRequest{Resource: Resource{4096, 4}})

	// Inside the threshold window nothing may be preempted.
	time.Sleep(50 * time.Millisecond)
	if got := hog.Allocated().MemoryMB; got != 16384 {
		t.Fatalf("preempted %d MB before the starvation threshold elapsed", 16384-got)
	}
	// Past the threshold the starved tenant gets its share.
	waitEvent(t, late, 2*time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })
}
