package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// checkMirrors asserts the scheduler's O(1) accounting mirrors against the
// ground truth recomputed from per-node state: usedTotal is the sum of
// every node's used (dead nodes included — their containers stay charged
// until teardown uncharges them), capTotal is the live capacity, each live
// node's schedAvail equals capacity-used, and no node is overcommitted.
func checkMirrors(t *testing.T, rm *ResourceManager) {
	t.Helper()
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var used, capT Resource
	for _, n := range rm.nodeList {
		n.mu.Lock()
		nu, nc, live := n.used, n.capacity, n.live
		n.mu.Unlock()
		used = used.Add(nu)
		if live {
			capT = capT.Add(nc)
			if avail := nc.Sub(nu); n.schedAvail != avail {
				t.Errorf("node %s: schedAvail mirror %v, truth %v", n.ID, n.schedAvail, avail)
			}
			if n.shard == nil {
				t.Errorf("node %s: live but not in any shard", n.ID)
			} else if n.shard.nodes[n.shardIdx] != n {
				t.Errorf("node %s: shardIdx %d does not point back at the node", n.ID, n.shardIdx)
			}
		} else if n.shard != nil {
			t.Errorf("node %s: down but still in shard %s", n.ID, n.shard.rack)
		}
		if nu.MemoryMB > nc.MemoryMB || nu.VCores > nc.VCores {
			t.Errorf("node %s overcommitted: used %v > capacity %v", n.ID, nu, nc)
		}
	}
	if rm.usedTotal != used {
		t.Errorf("usedTotal mirror %v, recomputed %v", rm.usedTotal, used)
	}
	if rm.capTotal != capT {
		t.Errorf("capTotal mirror %v, recomputed %v", rm.capTotal, capT)
	}
}

// Regression for the cancel/allocate race: Cancel used to flip a flag the
// scheduling pass never re-checked, so a request could be both withdrawn
// and granted. The CAS state machine makes the two terminal transitions
// mutually exclusive; this hammers it with cancels racing ScheduleNow.
func TestCancelRaceWithSchedulingPasses(t *testing.T) {
	rm := New(Config{
		Nodes:            4,
		NodesPerRack:     2,
		NodeResource:     Resource{MemoryMB: 1 << 20, VCores: 1 << 20},
		ScheduleInterval: time.Hour, // driven by ScheduleNow below
	})
	defer rm.Stop()
	app := rm.Submit("race")
	defer app.Unregister()

	const workers, rounds = 8, 200
	stopSched := make(chan struct{})
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		for {
			select {
			case <-stopSched:
				return
			default:
				rm.ScheduleNow()
			}
		}
	}()

	var mu sync.Mutex
	all := make([]*ContainerRequest, 0, workers*rounds)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				req := &ContainerRequest{
					Resource:      Resource{MemoryMB: 64, VCores: 1},
					RelaxLocality: true,
				}
				mu.Lock()
				all = append(all, req)
				mu.Unlock()
				done := make(chan struct{})
				go func() { app.Cancel(req); close(done) }()
				app.Request(req)
				<-done
			}
		}()
	}
	wg.Wait()
	// Let the scheduler settle every surviving request, then stop it.
	for i := 0; i < 50; i++ {
		rm.ScheduleNow()
	}
	close(stopSched)
	schedWG.Wait()
	rm.ScheduleNow()

	// Count what the RM actually delivered.
	allocated := make(map[*ContainerRequest]int)
	for {
		ev, ok := app.Events().TryGet()
		if !ok {
			break
		}
		if e, isAlloc := ev.(AllocatedEvent); isAlloc {
			allocated[e.Request]++
		}
	}
	for _, req := range all {
		switch st := req.state.Load(); st {
		case reqAllocated:
			if allocated[req] != 1 {
				t.Fatalf("allocated request delivered %d times", allocated[req])
			}
		case reqCancelled:
			if allocated[req] != 0 {
				t.Fatalf("request both cancelled and allocated")
			}
		default:
			t.Fatalf("request left in non-terminal state %d", st)
		}
	}
	if n := app.PendingRequests(); n != 0 {
		t.Fatalf("pending accounting drifted: %d left after all requests settled", n)
	}
	checkMirrors(t, rm)
}

// Regression for RestoreNode: it used to wipe the node's container map and
// usage without stopping the old containers or telling their owners —
// resources double-counted, apps holding dead handles. Fail a loaded node,
// restore it, and require the owner's accounting, the stop notifications,
// and the node's reusability to all line up.
func TestFailThenRestoreNode(t *testing.T) {
	rm := New(Config{
		Nodes:            2,
		NodesPerRack:     2,
		NodeResource:     Resource{MemoryMB: 4096, VCores: 4},
		ScheduleInterval: 200 * time.Microsecond,
	})
	defer rm.Stop()
	app := rm.Submit("restore")
	defer app.Unregister()

	for i := 0; i < 4; i++ {
		app.Request(&ContainerRequest{Resource: Resource{MemoryMB: 2048, VCores: 1}, RelaxLocality: true})
	}
	waitFor(t, "initial allocations", func() bool { return app.HeldContainers() == 4 })

	rm.FailNode("node-000")
	// The app must hear one ContainerStopped(StopNodeLost) per lost
	// container plus the NodeFailed notification, and its accounting must
	// shrink by exactly the lost containers.
	waitFor(t, "loss notifications", func() bool { return app.HeldContainers() == 2 })
	stopped, nodeFailed := 0, 0
	for {
		ev, ok := app.Events().TryGet()
		if !ok {
			break
		}
		switch e := ev.(type) {
		case ContainerStoppedEvent:
			if e.Node == "node-000" && e.Reason == StopNodeLost {
				stopped++
			}
		case NodeFailedEvent:
			if e.Node == "node-000" {
				nodeFailed++
			}
		}
	}
	if stopped != 2 || nodeFailed != 1 {
		t.Fatalf("got %d stop notifications, %d node-failed (want 2, 1)", stopped, nodeFailed)
	}
	if got := rm.UsedResources().MemoryMB; got != 4096 {
		t.Fatalf("used after node loss = %d MB, want 4096", got)
	}
	checkMirrors(t, rm)

	// Restore and refill: the node must be placeable again, with no
	// double-counted capacity from its previous life.
	rm.RestoreNode("node-000")
	rm.RestoreNode("node-000") // restoring a live node is a no-op
	if got := rm.TotalResources().MemoryMB; got != 8192 {
		t.Fatalf("capacity after restore = %d MB, want 8192", got)
	}
	for i := 0; i < 2; i++ {
		app.Request(&ContainerRequest{Resource: Resource{MemoryMB: 2048, VCores: 1}, RelaxLocality: true})
	}
	waitFor(t, "re-allocations on restored node", func() bool { return app.HeldContainers() == 4 })
	if got := rm.UsedResources().MemoryMB; got != 8192 {
		t.Fatalf("used after refill = %d MB, want 8192", got)
	}
	checkMirrors(t, rm)
}

// Randomized invariant stress: 50 seeds of interleaved request / cancel /
// fail / restore / schedule traffic. After every seed the accounting
// mirrors must match ground truth, no node may be overcommitted, and no
// request may be both cancelled and allocated.
func TestInvariantStressSeeds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			rm := New(Config{
				Nodes:            8,
				NodesPerRack:     4,
				NodeResource:     Resource{MemoryMB: 8192, VCores: 64},
				ScheduleInterval: time.Hour, // explicit ScheduleNow only
			})
			defer rm.Stop()
			apps := []*Application{rm.Submit("a0"), rm.Submit("a1"), rm.Submit("a2")}
			var reqs []*ContainerRequest
			owner := make(map[*ContainerRequest]*Application)

			for op := 0; op < 300; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // request
					a := apps[rng.Intn(len(apps))]
					req := &ContainerRequest{
						Resource:      Resource{MemoryMB: (rng.Intn(8) + 1) * 256, VCores: 1},
						RelaxLocality: true,
						Priority:      rng.Intn(3),
					}
					if rng.Intn(2) == 0 {
						req.Nodes = []NodeID{NodeID(fmt.Sprintf("node-%03d", rng.Intn(8)))}
					}
					reqs = append(reqs, req)
					owner[req] = a
					a.Request(req)
				case 4, 5: // cancel a random outstanding request
					if len(reqs) > 0 {
						req := reqs[rng.Intn(len(reqs))]
						owner[req].Cancel(req)
					}
				case 6: // fail or restore a random node
					id := NodeID(fmt.Sprintf("node-%03d", rng.Intn(8)))
					if rng.Intn(2) == 0 {
						rm.FailNode(id)
					} else {
						rm.RestoreNode(id)
					}
				case 7: // release a random held container
					a := apps[rng.Intn(len(apps))]
					a.mu.Lock()
					var c *Container
					for _, held := range a.containers {
						c = held
						break
					}
					a.mu.Unlock()
					if c != nil {
						a.Release(c)
					}
				default:
					rm.ScheduleNow()
				}
			}
			// Restore everything, drain, and verify.
			for i := 0; i < 8; i++ {
				rm.RestoreNode(NodeID(fmt.Sprintf("node-%03d", i)))
			}
			for i := 0; i < 20; i++ {
				rm.ScheduleNow()
			}
			allocated := make(map[*ContainerRequest]int)
			for _, a := range apps {
				for {
					ev, ok := a.Events().TryGet()
					if !ok {
						break
					}
					if e, isAlloc := ev.(AllocatedEvent); isAlloc {
						allocated[e.Request]++
					}
				}
			}
			for _, req := range reqs {
				st := req.state.Load()
				if st == reqCancelled && allocated[req] != 0 {
					t.Fatalf("request both cancelled and allocated")
				}
				if allocated[req] > 1 {
					t.Fatalf("request allocated %d times", allocated[req])
				}
			}
			checkMirrors(t, rm)
			for _, a := range apps {
				a.Unregister()
			}
			if used := rm.UsedResources(); !used.IsZero() {
				t.Fatalf("resources leaked after unregister: %v", used)
			}
			checkMirrors(t, rm)
		})
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}
