package cluster

import (
	"errors"
	"sync"
	"time"
)

// Container execution errors.
var (
	ErrContainerKilled   = errors.New("cluster: container killed")
	ErrContainerNotReady = errors.New("cluster: container not launched")
	ErrContainerBusy     = errors.New("cluster: container already executing")
	ErrContainerDone     = errors.New("cluster: container released")
	// ErrLaunchFailed: the allocation was granted but the container process
	// never came up (injected by the chaos plane); the owner should discard
	// the container and re-request.
	ErrLaunchFailed = errors.New("cluster: container launch failed")
)

// StopReason says why a container was terminated by the platform.
type StopReason int

const (
	// StopReleased: the owning application released it voluntarily.
	StopReleased StopReason = iota
	// StopPreempted: the RM preempted it for fairness.
	StopPreempted
	// StopNodeLost: its node failed or was decommissioned.
	StopNodeLost
)

func (r StopReason) String() string {
	switch r {
	case StopReleased:
		return "RELEASED"
	case StopPreempted:
		return "PREEMPTED"
	default:
		return "NODE_LOST"
	}
}

// Container is an allocated execution slot on a node. The owning
// application launches it once (paying launch overhead) and may then Exec
// work in it repeatedly — that sequential re-use is the container-reuse
// optimisation of §4.2.
type Container struct {
	ID       ContainerID
	App      AppID
	Resource Resource
	Locality Locality

	node *Node
	rm   *ResourceManager
	// tenant is the owning app's tenant, copied at allocation — the tag
	// the chaos plane scopes injected faults by.
	tenant string

	mu        sync.Mutex
	launched  bool
	executing bool
	released  bool
	execCount int
	stop      chan struct{} // closed on kill
	allocTime time.Time
}

// Node returns the node hosting this container.
func (c *Container) Node() NodeID { return c.node.ID }

// Rack returns the rack of the hosting node.
func (c *Container) Rack() string { return c.node.Rack }

// ExecCount returns how many tasks have run in this container.
func (c *Container) ExecCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.execCount
}

// Killed returns a channel closed when the platform terminates the
// container (preemption or node loss) or the app releases it.
func (c *Container) Killed() <-chan struct{} { return c.stop }

// Launch starts the container process, charging ContainerLaunchOverhead.
// It is idempotent; only the first call pays.
func (c *Container) Launch() error {
	c.mu.Lock()
	if c.released {
		c.mu.Unlock()
		return ErrContainerDone
	}
	if c.launched {
		c.mu.Unlock()
		return nil
	}
	if c.rm.cfg.Chaos.LaunchFault(string(c.node.ID), c.tenant) {
		c.mu.Unlock()
		return ErrLaunchFailed
	}
	c.launched = true
	c.mu.Unlock()
	c.rm.sleepInterruptible(c.rm.cfg.ContainerLaunchOverhead, c.stop)
	return nil
}

// Exec runs fn inside the container and blocks until it returns or the
// container is killed. The first execution in a fresh container pays the
// warm-up penalty. fn receives a channel that is closed when the container
// is being killed; long-running work should observe it at I/O boundaries.
//
// If the container is killed before fn returns, Exec returns
// ErrContainerKilled immediately; fn's goroutine is abandoned (a "zombie"
// task, as when a node dies under a real YARN container) and its result is
// discarded.
func (c *Container) Exec(fn func(stop <-chan struct{}) error) error {
	c.mu.Lock()
	if c.released {
		c.mu.Unlock()
		return ErrContainerDone
	}
	if !c.launched {
		c.mu.Unlock()
		return ErrContainerNotReady
	}
	if c.executing {
		c.mu.Unlock()
		return ErrContainerBusy
	}
	select {
	case <-c.stop:
		c.mu.Unlock()
		return ErrContainerKilled
	default:
	}
	c.executing = true
	first := c.execCount == 0
	c.execCount++
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		c.executing = false
		c.mu.Unlock()
	}()

	if first && c.rm.cfg.WarmupPenalty > 0 {
		if !c.rm.sleepInterruptible(c.rm.cfg.WarmupPenalty, c.stop) {
			return ErrContainerKilled
		}
	}
	node := string(c.node.ID)
	c.rm.cfg.Chaos.TaskStarted(node)
	if d := c.rm.cfg.Chaos.ExecDelay(node); d > 0 {
		if !c.rm.sleepInterruptible(d, c.stop) {
			return ErrContainerKilled
		}
	}
	if err := c.rm.cfg.Chaos.ExecFault(node, c.tenant); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- fn(c.stop) }()
	select {
	case err := <-done:
		return err
	case <-c.stop:
		return ErrContainerKilled
	}
}

// kill closes the stop channel exactly once. Caller holds no container lock.
func (c *Container) kill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.released {
		c.released = true
		close(c.stop)
	}
}

// sleepInterruptible sleeps for d unless stop closes first; returns false
// if interrupted. Zero and negative durations return immediately.
func (rm *ResourceManager) sleepInterruptible(d time.Duration, stop <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
