package cluster

import "time"

// RM-owned request queues and the incrementally-maintained fairness
// order. The old scheduler copied and stable-sorted every app's pending
// slice on every pass (O(R log R) per grant) and stable-sorted the app
// list by current allocation (another per-pass sort); at 100k outstanding
// requests those sorts were the control plane's floor. Both orders are
// now maintained incrementally:
//
//   - per app, requests live in per-priority FIFO buckets (arrival order
//     within a priority == the old stable sort by Priority);
//   - apps live in a two-level tenant→app hierarchy: tenant groups are
//     sorted by weighted allocation (allocMB/weight asc, creation seq
//     asc) and each group's apps by (allocated memory asc, submission
//     seq asc). Positions are repaired by local bubbles whenever an
//     allocation changes. An app submitted without a tenant gets a
//     private singleton group of weight 1, which makes the two-level
//     order reduce exactly to the old flat most-starved-first order.
//
// Request lifecycle is an atomic state machine:
//
//	staged --(ingest)--> queued --(grant)--> allocated
//	   \                    \
//	    +----(cancel)--------+--> cancelled
//
// Staged requests belong to the application (a.mu); queued requests
// belong to the RM (rm.mu). Cancel uses CAS so that a request can win
// exactly one terminal transition — cancelled and allocated are mutually
// exclusive by construction, where the old code could allocate a request
// that was concurrently cancelled. missedNode/missedRack are only ever
// touched under rm.mu after ingestion, fixing the old split-brain where
// place() mutated them under rm.mu while the app compacted the same
// request under a.mu.
const (
	reqStaged int32 = iota
	reqQueued
	reqAllocated
	reqCancelled
)

// tenantGroup is one tenant's scheduling state, guarded by rm.mu. Named
// groups are created by SetTenant or on the first SubmitTenant for the
// tenant and persist (with their weight/quota) for the RM's lifetime;
// untenanted apps get anonymous singleton groups that die with the app.
type tenantGroup struct {
	name    string // "" for a private per-app singleton group
	weight  int    // fair-share weight, ≥ 1
	quotaMB int    // hard cap on held memory; 0 = unlimited
	seq     int    // creation order; fairness tiebreak
	pos     int    // index in rm.schedTenants
	allocMB int    // sum of member apps' held memory
	apps    []*Application

	// starvedSince marks when the group was first observed starved (unmet
	// demand below its weighted share). Touched only by the RM loop
	// goroutine inside maybePreempt, never concurrently.
	starvedSince time.Time
}

// appSched is an application's scheduling state, owned by the RM and
// guarded by rm.mu.
type appSched struct {
	group      *tenantGroup
	seq        int // submission order; fairness tiebreak within the group
	pos        int // index in group.apps
	allocMB    int // mirror of a.allocated.MemoryMB for ordering
	queuedLive int // queued, non-cancelled, not yet granted
	buckets    map[int]*reqBucket
	prios      []int // sorted bucket keys
}

// reqBucket is one priority's FIFO. The pass walk compacts cancelled and
// granted entries in place, so no separate head cursor is needed.
type reqBucket struct {
	reqs []*ContainerRequest
}

// bucketLocked returns (creating if needed) the app's bucket for prio,
// keeping prios sorted. Caller holds rm.mu.
func (as *appSched) bucketLocked(prio int) *reqBucket {
	if q, ok := as.buckets[prio]; ok {
		return q
	}
	if as.buckets == nil {
		as.buckets = make(map[int]*reqBucket)
	}
	q := &reqBucket{}
	as.buckets[prio] = q
	i := len(as.prios)
	for i > 0 && as.prios[i-1] > prio {
		i--
	}
	as.prios = append(as.prios, 0)
	copy(as.prios[i+1:], as.prios[i:])
	as.prios[i] = prio
	return q
}

// settleLocked accounts exactly once for a request leaving the live
// queue (granted, cancelled, or dropped). Caller holds rm.mu.
func (rm *ResourceManager) settleLocked(req *ContainerRequest) {
	if req.settled || req.owner == nil {
		return
	}
	req.settled = true
	req.owner.sched.queuedLive--
}

// tenantLess is the cross-tenant fairness order: smallest weighted
// allocation (allocMB/weight, compared multiplicatively to stay in
// integers) first, creation order as the stable tiebreak. With all
// weights 1 this is exactly the old (allocMB, seq) order.
func tenantLess(a, b *tenantGroup) bool {
	wa, wb := a.allocMB*b.weight, b.allocMB*a.weight
	if wa != wb {
		return wa < wb
	}
	return a.seq < b.seq
}

// appLess is the within-group fairness order: least allocated first,
// submission order as the stable tiebreak.
func appLess(a, b *Application) bool {
	if a.sched.allocMB != b.sched.allocMB {
		return a.sched.allocMB < b.sched.allocMB
	}
	return a.sched.seq < b.sched.seq
}

// insertGroupLocked adds g to the tenant fairness order. Caller holds
// rm.mu.
func (rm *ResourceManager) insertGroupLocked(g *tenantGroup) {
	i := len(rm.schedTenants)
	for i > 0 && tenantLess(g, rm.schedTenants[i-1]) {
		i--
	}
	rm.schedTenants = append(rm.schedTenants, nil)
	copy(rm.schedTenants[i+1:], rm.schedTenants[i:])
	rm.schedTenants[i] = g
	for ; i < len(rm.schedTenants); i++ {
		rm.schedTenants[i].pos = i
	}
}

// removeGroupLocked drops g from the tenant fairness order. Caller holds
// rm.mu.
func (rm *ResourceManager) removeGroupLocked(g *tenantGroup) {
	i := g.pos
	if i >= len(rm.schedTenants) || rm.schedTenants[i] != g {
		return
	}
	copy(rm.schedTenants[i:], rm.schedTenants[i+1:])
	rm.schedTenants = rm.schedTenants[:len(rm.schedTenants)-1]
	for ; i < len(rm.schedTenants); i++ {
		rm.schedTenants[i].pos = i
	}
}

// groupOrderChangedLocked bubbles g back to its sorted position after its
// weighted-allocation key changed. Caller holds rm.mu.
func (rm *ResourceManager) groupOrderChangedLocked(g *tenantGroup) {
	i := g.pos
	if i >= len(rm.schedTenants) || rm.schedTenants[i] != g {
		return
	}
	for i > 0 && tenantLess(g, rm.schedTenants[i-1]) {
		rm.schedTenants[i] = rm.schedTenants[i-1]
		rm.schedTenants[i].pos = i
		i--
	}
	for i < len(rm.schedTenants)-1 && tenantLess(rm.schedTenants[i+1], g) {
		rm.schedTenants[i] = rm.schedTenants[i+1]
		rm.schedTenants[i].pos = i
		i++
	}
	rm.schedTenants[i] = g
	g.pos = i
}

// insertAppLocked adds a to group g's fairness order. Caller holds rm.mu.
func (rm *ResourceManager) insertAppLocked(g *tenantGroup, a *Application) {
	a.sched.group = g
	i := len(g.apps)
	for i > 0 && appLess(a, g.apps[i-1]) {
		i--
	}
	g.apps = append(g.apps, nil)
	copy(g.apps[i+1:], g.apps[i:])
	g.apps[i] = a
	for ; i < len(g.apps); i++ {
		g.apps[i].sched.pos = i
	}
}

// removeAppLocked drops a from its group, and the group itself from the
// tenant order if it was the app's private singleton. Caller holds rm.mu.
func (rm *ResourceManager) removeAppLocked(a *Application) {
	g := a.sched.group
	if g == nil {
		return
	}
	i := a.sched.pos
	if i < len(g.apps) && g.apps[i] == a {
		copy(g.apps[i:], g.apps[i+1:])
		g.apps = g.apps[:len(g.apps)-1]
		for ; i < len(g.apps); i++ {
			g.apps[i].sched.pos = i
		}
		g.allocMB -= a.sched.allocMB
		rm.groupOrderChangedLocked(g)
	}
	a.sched.group = nil
	if g.name == "" && len(g.apps) == 0 {
		rm.removeGroupLocked(g)
	}
}

// appAllocChangedLocked applies a memory delta to the app's fairness key
// and bubbles the app within its group and the group within the tenant
// order. Caller holds rm.mu.
func (rm *ResourceManager) appAllocChangedLocked(a *Application, deltaMB int) {
	a.sched.allocMB += deltaMB
	g := a.sched.group
	if g == nil {
		return
	}
	i := a.sched.pos
	if i < len(g.apps) && g.apps[i] == a {
		for i > 0 && appLess(a, g.apps[i-1]) {
			g.apps[i] = g.apps[i-1]
			g.apps[i].sched.pos = i
			i--
		}
		for i < len(g.apps)-1 && appLess(g.apps[i+1], a) {
			g.apps[i] = g.apps[i+1]
			g.apps[i].sched.pos = i
			i++
		}
		g.apps[i] = a
		a.sched.pos = i
	}
	g.allocMB += deltaMB
	rm.groupOrderChangedLocked(g)
}
