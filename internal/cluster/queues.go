package cluster

// RM-owned request queues and the incrementally-maintained fairness
// order. The old scheduler copied and stable-sorted every app's pending
// slice on every pass (O(R log R) per grant) and stable-sorted the app
// list by current allocation (another per-pass sort); at 100k outstanding
// requests those sorts were the control plane's floor. Both orders are
// now maintained incrementally:
//
//   - per app, requests live in per-priority FIFO buckets (arrival order
//     within a priority == the old stable sort by Priority);
//   - apps live in rm.schedApps sorted by (allocated memory asc,
//     submission seq asc) == the old stable most-starved-first sort, with
//     the position repaired by a local bubble whenever an app's
//     allocation changes.
//
// Request lifecycle is an atomic state machine:
//
//	staged --(ingest)--> queued --(grant)--> allocated
//	   \                    \
//	    +----(cancel)--------+--> cancelled
//
// Staged requests belong to the application (a.mu); queued requests
// belong to the RM (rm.mu). Cancel uses CAS so that a request can win
// exactly one terminal transition — cancelled and allocated are mutually
// exclusive by construction, where the old code could allocate a request
// that was concurrently cancelled. missedNode/missedRack are only ever
// touched under rm.mu after ingestion, fixing the old split-brain where
// place() mutated them under rm.mu while the app compacted the same
// request under a.mu.
const (
	reqStaged int32 = iota
	reqQueued
	reqAllocated
	reqCancelled
)

// appSched is an application's scheduling state, owned by the RM and
// guarded by rm.mu.
type appSched struct {
	seq        int // submission order; fairness tiebreak
	pos        int // index in rm.schedApps
	allocMB    int // mirror of a.allocated.MemoryMB for ordering
	queuedLive int // queued, non-cancelled, not yet granted
	buckets    map[int]*reqBucket
	prios      []int // sorted bucket keys
}

// reqBucket is one priority's FIFO. The pass walk compacts cancelled and
// granted entries in place, so no separate head cursor is needed.
type reqBucket struct {
	reqs []*ContainerRequest
}

// bucketLocked returns (creating if needed) the app's bucket for prio,
// keeping prios sorted. Caller holds rm.mu.
func (as *appSched) bucketLocked(prio int) *reqBucket {
	if q, ok := as.buckets[prio]; ok {
		return q
	}
	if as.buckets == nil {
		as.buckets = make(map[int]*reqBucket)
	}
	q := &reqBucket{}
	as.buckets[prio] = q
	i := len(as.prios)
	for i > 0 && as.prios[i-1] > prio {
		i--
	}
	as.prios = append(as.prios, 0)
	copy(as.prios[i+1:], as.prios[i:])
	as.prios[i] = prio
	return q
}

// settleLocked accounts exactly once for a request leaving the live
// queue (granted, cancelled, or dropped). Caller holds rm.mu.
func (rm *ResourceManager) settleLocked(req *ContainerRequest) {
	if req.settled || req.owner == nil {
		return
	}
	req.settled = true
	req.owner.sched.queuedLive--
}

// appLess is the fairness order: least allocated first, submission order
// as the stable tiebreak.
func appLess(a, b *Application) bool {
	if a.sched.allocMB != b.sched.allocMB {
		return a.sched.allocMB < b.sched.allocMB
	}
	return a.sched.seq < b.sched.seq
}

// insertAppLocked adds a to the fairness order. Caller holds rm.mu.
func (rm *ResourceManager) insertAppLocked(a *Application) {
	i := len(rm.schedApps)
	for i > 0 && appLess(a, rm.schedApps[i-1]) {
		i--
	}
	rm.schedApps = append(rm.schedApps, nil)
	copy(rm.schedApps[i+1:], rm.schedApps[i:])
	rm.schedApps[i] = a
	for ; i < len(rm.schedApps); i++ {
		rm.schedApps[i].sched.pos = i
	}
}

// removeAppLocked drops a from the fairness order. Caller holds rm.mu.
func (rm *ResourceManager) removeAppLocked(a *Application) {
	i := a.sched.pos
	if i >= len(rm.schedApps) || rm.schedApps[i] != a {
		return
	}
	copy(rm.schedApps[i:], rm.schedApps[i+1:])
	rm.schedApps = rm.schedApps[:len(rm.schedApps)-1]
	for ; i < len(rm.schedApps); i++ {
		rm.schedApps[i].sched.pos = i
	}
}

// appAllocChangedLocked applies a memory delta to the app's fairness key
// and bubbles it back to its sorted position. Caller holds rm.mu.
func (rm *ResourceManager) appAllocChangedLocked(a *Application, deltaMB int) {
	a.sched.allocMB += deltaMB
	i := a.sched.pos
	if i >= len(rm.schedApps) || rm.schedApps[i] != a {
		return
	}
	for i > 0 && appLess(a, rm.schedApps[i-1]) {
		rm.schedApps[i] = rm.schedApps[i-1]
		rm.schedApps[i].sched.pos = i
		i--
	}
	for i < len(rm.schedApps)-1 && appLess(rm.schedApps[i+1], a) {
		rm.schedApps[i] = rm.schedApps[i+1]
		rm.schedApps[i].sched.pos = i
		i++
	}
	rm.schedApps[i] = a
	a.sched.pos = i
}
