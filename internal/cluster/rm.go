package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tez/internal/mailbox"
	"tez/internal/timeline"
)

// ResourceManager is the cluster-wide allocator: the stand-in for the YARN
// RM. It owns the nodes, runs the scheduling heartbeat, and notifies
// applications through their event mailboxes.
//
// Lock order: rm.mu → a.mu → n.mu (c.mu is only ever taken alone). A
// scheduling pass holds rm.mu end to end and works against the rack-
// sharded node index (shards.go) and the per-app request buckets
// (queues.go); allocation events are delivered in batches after rm.mu is
// released.
type ResourceManager struct {
	cfg Config

	mu        sync.Mutex
	nodes     map[NodeID]*Node
	nodeList  []*Node // stable order for deterministic iteration
	shards    map[string]*rackShard
	shardList []*rackShard // stable rack order for deterministic placement
	apps     map[AppID]*Application
	appOrder []AppID // submission order
	// schedTenants is the two-level fairness order: tenant groups sorted
	// by weighted allocation, each holding its apps sorted by allocation.
	// Untenanted apps ride in anonymous singleton groups, reducing the
	// hierarchy to the old flat order. tenantCfg keeps named groups (and
	// their weight/quota) resolvable even while they have no apps.
	schedTenants []*tenantGroup
	tenantCfg    map[string]*tenantGroup
	nextGroupSeq int

	// Cluster-wide capacity mirrors, kept in sync by the charge/uncharge
	// helpers so Total/UsedResources are O(1) instead of O(nodes).
	capTotal  Resource // live nodes' capacity
	usedTotal Resource // allocated across all nodes

	nextContainer ContainerID
	nextApp       AppID

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	lastPreempt time.Time
}

// New builds a cluster per cfg and starts the scheduling loop.
func New(cfg Config) *ResourceManager {
	cfg = cfg.withDefaults()
	rm := &ResourceManager{
		cfg:       cfg,
		nodes:     make(map[NodeID]*Node),
		shards:    make(map[string]*rackShard),
		apps:      make(map[AppID]*Application),
		tenantCfg: make(map[string]*tenantGroup),
		stopCh:    make(chan struct{}),
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			ID:         NodeID(fmt.Sprintf("node-%03d", i)),
			Rack:       fmt.Sprintf("rack-%02d", i/cfg.NodesPerRack),
			capacity:   cfg.NodeResource,
			live:       true,
			containers: make(map[ContainerID]*Container),
			schedAvail: cfg.NodeResource,
		}
		rm.nodes[n.ID] = n
		rm.nodeList = append(rm.nodeList, n)
		s, ok := rm.shards[n.Rack]
		if !ok {
			s = &rackShard{rack: n.Rack}
			rm.shards[n.Rack] = s
			rm.shardList = append(rm.shardList, s)
		}
		s.insert(n)
		rm.capTotal = rm.capTotal.Add(n.capacity)
	}
	rm.wg.Add(1)
	go rm.loop()
	return rm
}

// Stop halts the scheduler. Outstanding applications keep their containers;
// Stop is for test/bench teardown.
func (rm *ResourceManager) Stop() {
	rm.stopOnce.Do(func() { close(rm.stopCh) })
	rm.wg.Wait()
}

// Config returns the cluster configuration (after defaulting).
func (rm *ResourceManager) Config() Config { return rm.cfg }

// Nodes returns the ids of all nodes in stable order.
func (rm *ResourceManager) Nodes() []NodeID {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make([]NodeID, len(rm.nodeList))
	for i, n := range rm.nodeList {
		out[i] = n.ID
	}
	return out
}

// RackOf returns the rack of a node ("" if unknown).
func (rm *ResourceManager) RackOf(id NodeID) string {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if n, ok := rm.nodes[id]; ok {
		return n.Rack
	}
	return ""
}

// TotalResources returns the live cluster capacity.
func (rm *ResourceManager) TotalResources() Resource {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.capTotal
}

// UsedResources returns currently allocated resources across the cluster.
func (rm *ResourceManager) UsedResources() Resource {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.usedTotal
}

// AllocatedByApp snapshots per-application holdings (for utilisation
// timelines, Figure 12).
func (rm *ResourceManager) AllocatedByApp() map[string]Resource {
	rm.mu.Lock()
	apps := make([]*Application, 0, len(rm.apps))
	for _, a := range rm.apps {
		apps = append(apps, a)
	}
	rm.mu.Unlock()
	out := make(map[string]Resource, len(apps))
	for _, a := range apps {
		out[a.Name] = a.Allocated()
	}
	return out
}

// Submit registers a new application and returns its handle. The app is
// untenanted: it competes for fair share on its own, exactly as before
// tenant groups existed.
func (rm *ResourceManager) Submit(name string) *Application {
	return rm.SubmitTenant(name, "")
}

// SubmitTenant registers a new application under the named tenant: the
// app shares that tenant's weighted fair share and memory quota with its
// other apps. An empty tenant means a private share (the old behaviour).
// Unknown tenant names are materialised with weight 1 and no quota; use
// SetTenant to configure them.
func (rm *ResourceManager) SubmitTenant(name, tenant string) *Application {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.nextApp++
	a := &Application{
		ID:         rm.nextApp,
		Name:       name,
		Tenant:     tenant,
		rm:         rm,
		events:     mailbox.New[Event](),
		containers: make(map[ContainerID]*Container),
	}
	a.sched.seq = int(rm.nextApp)
	rm.apps[a.ID] = a
	rm.appOrder = append(rm.appOrder, a.ID)
	rm.insertAppLocked(rm.groupLocked(tenant), a)
	return a
}

// groupLocked resolves the scheduling group for a tenant name, creating
// it if needed. "" always creates a fresh anonymous singleton group.
// Caller holds rm.mu.
func (rm *ResourceManager) groupLocked(tenant string) *tenantGroup {
	if tenant != "" {
		if g, ok := rm.tenantCfg[tenant]; ok {
			return g
		}
	}
	rm.nextGroupSeq++
	g := &tenantGroup{name: tenant, weight: 1, seq: rm.nextGroupSeq}
	if tenant != "" {
		rm.tenantCfg[tenant] = g
	}
	rm.insertGroupLocked(g)
	return g
}

// SetTenant declares (or reconfigures) a tenant's fair-share weight and
// hard memory quota. Weight < 1 is clamped to 1; quotaMB ≤ 0 means
// unlimited. Safe to call before or after the tenant's apps exist.
func (rm *ResourceManager) SetTenant(tenant string, weight, quotaMB int) {
	if tenant == "" {
		return
	}
	if weight < 1 {
		weight = 1
	}
	if quotaMB < 0 {
		quotaMB = 0
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	g := rm.groupLocked(tenant)
	g.weight = weight
	g.quotaMB = quotaMB
	rm.groupOrderChangedLocked(g) // weight changes the order key
}

// TenantUsage reports a tenant's currently held memory and its quota
// (0 = unlimited). Unknown tenants report zeros.
func (rm *ResourceManager) TenantUsage(tenant string) (allocMB, quotaMB int) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if g, ok := rm.tenantCfg[tenant]; ok {
		return g.allocMB, g.quotaMB
	}
	return 0, 0
}

func (rm *ResourceManager) removeApp(a *Application) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	delete(rm.apps, a.ID)
	rm.removeAppLocked(a)
	for i, id := range rm.appOrder {
		if id == a.ID {
			rm.appOrder = append(rm.appOrder[:i], rm.appOrder[i+1:]...)
			break
		}
	}
}

// FailNode simulates losing a machine: its containers are killed with
// StopNodeLost and every application is told about the node failure.
// Wiring the same failure into the DFS and shuffle service is the job of
// platform.Platform.
func (rm *ResourceManager) FailNode(id NodeID) {
	rm.failNode(id, false)
}

// DecommissionNode is a planned outage: same effects, flagged as planned.
func (rm *ResourceManager) DecommissionNode(id NodeID) {
	rm.failNode(id, true)
}

func (rm *ResourceManager) failNode(id NodeID, planned bool) {
	rm.mu.Lock()
	n, ok := rm.nodes[id]
	if !ok {
		rm.mu.Unlock()
		return
	}
	n.mu.Lock()
	alreadyDown := !n.live
	n.live = false
	victims := make([]*Container, 0, len(n.containers))
	for _, c := range n.containers {
		victims = append(victims, c)
	}
	n.mu.Unlock()
	if !alreadyDown {
		rm.capTotal = rm.capTotal.Sub(n.capacity)
	}
	if n.shard != nil {
		n.shard.remove(n)
	}
	apps := make([]*Application, 0, len(rm.apps))
	for _, id := range rm.appOrder {
		if a, ok := rm.apps[id]; ok {
			apps = append(apps, a)
		}
	}
	rm.mu.Unlock()

	// Tear the victims down, batching each owner's stop notifications
	// with the node-failed event: one mailbox wake-up per application.
	byApp := make(map[*Application][]Event)
	for _, c := range victims {
		app, stopped := rm.stopContainerQuiet(c, StopNodeLost)
		if app == nil || !stopped {
			continue
		}
		rm.cfg.Timeline.Record(timeline.Event{
			Type: timeline.ContainerStopped, Tenant: c.tenant,
			Node: string(id), Container: int64(c.ID), Info: StopNodeLost.String(),
		})
		byApp[app] = append(byApp[app], ContainerStoppedEvent{ContainerID: c.ID, Node: id, Reason: StopNodeLost})
	}
	typ := timeline.NodeFailed
	if planned {
		typ = timeline.NodeDecommissioned
	}
	rm.cfg.Timeline.Record(timeline.Event{Type: typ, Node: string(id)})
	for _, a := range apps {
		evs := append(byApp[a], NodeFailedEvent{Node: id, Decommissioned: planned})
		a.events.PutAll(evs)
	}
}

// RestoreNode brings a failed node back (empty). Containers that were
// still registered on the node — possible when the restore races the
// failure's own teardown — are stopped and their owners notified before
// the node re-enters the placement index, so resources can never be
// double-counted and owners never silently lose a live handle. Restoring
// a live node is a no-op.
func (rm *ResourceManager) RestoreNode(id NodeID) {
	rm.mu.Lock()
	n, ok := rm.nodes[id]
	if !ok || n.shard != nil {
		rm.mu.Unlock()
		return
	}
	n.mu.Lock()
	if n.live {
		// Down nodes are out of the shard index and marked !live; a live
		// node outside a shard cannot happen.
		n.mu.Unlock()
		rm.mu.Unlock()
		return
	}
	stragglers := make([]*Container, 0, len(n.containers))
	for _, c := range n.containers {
		stragglers = append(stragglers, c)
	}
	n.mu.Unlock()
	rm.mu.Unlock()

	for _, c := range stragglers {
		rm.stopContainer(c, StopNodeLost, true)
	}

	rm.mu.Lock()
	defer rm.mu.Unlock()
	if n.shard != nil {
		return // raced with another restore
	}
	n.mu.Lock()
	n.live = true
	n.used = Resource{}
	n.mu.Unlock()
	rm.capTotal = rm.capTotal.Add(n.capacity)
	n.schedAvail = n.capacity
	rm.shards[n.Rack].insert(n)
}

// stopContainer tears a container down for the given reason, returning its
// resources to the node. notify controls whether the owner gets a
// ContainerStoppedEvent (involuntary stops only; an app that called Release
// already knows).
func (rm *ResourceManager) stopContainer(c *Container, reason StopReason, notify bool) {
	app, stopped := rm.stopContainerQuiet(c, reason)
	if app == nil || !stopped || !notify {
		return
	}
	rm.cfg.Timeline.Record(timeline.Event{
		Type: timeline.ContainerStopped, Tenant: c.tenant,
		Node: string(c.node.ID), Container: int64(c.ID), Info: reason.String(),
	})
	app.events.Put(ContainerStoppedEvent{ContainerID: c.ID, Node: c.node.ID, Reason: reason})
}

// stopContainerQuiet does the teardown without notifying, so callers with
// many victims (node failure) can batch the events. It returns the owning
// application and whether this call was the one that stopped the
// container (stops are exactly-once).
func (rm *ResourceManager) stopContainerQuiet(c *Container, reason StopReason) (*Application, bool) {
	c.mu.Lock()
	if c.released {
		c.mu.Unlock()
		return nil, false
	}
	c.released = true
	close(c.stop)
	c.mu.Unlock()

	rm.mu.Lock()
	rm.unchargeNodeLocked(c.node, c)
	app := rm.apps[c.App]
	if app != nil && app.removeContainer(c) {
		rm.appAllocChangedLocked(app, -c.Resource.MemoryMB)
	}
	rm.mu.Unlock()
	return app, true
}

// ScheduleNow forces an immediate scheduling pass (deterministic tests).
func (rm *ResourceManager) ScheduleNow() { rm.scheduleOnce() }

func (rm *ResourceManager) loop() {
	defer rm.wg.Done()
	t := time.NewTicker(rm.cfg.ScheduleInterval)
	defer t.Stop()
	for {
		select {
		case <-rm.stopCh:
			return
		case <-t.C:
			rm.scheduleOnce()
			if rm.cfg.FairPreemption {
				rm.maybePreempt()
			}
		}
	}
}

// grant is one allocation decision, recorded during a pass and delivered
// after rm.mu is released.
type grant struct {
	app *Application
	ev  Event
}

// scheduleOnce runs allocation passes until no progress: each pass orders
// applications most-starved-first and grants each at most one container,
// which approximates YARN fair scheduling. Allocation events accumulate
// per application across the passes and are delivered with one batched
// mailbox wake-up per app.
func (rm *ResourceManager) scheduleOnce() {
	var byApp map[*Application][]Event
	var order []*Application
	var grants []grant
	for {
		order, grants = rm.schedulePass(order, grants[:0])
		if len(grants) == 0 {
			break
		}
		if byApp == nil {
			byApp = make(map[*Application][]Event)
		}
		for _, g := range grants {
			byApp[g.app] = append(byApp[g.app], g.ev)
		}
	}
	for a, evs := range byApp {
		a.events.PutAll(evs)
	}
}

// schedulePass runs one fair-sharing pass under rm.mu: ingest staged
// requests, then walk the incrementally-sorted starvation order giving
// each application at most one grant. The scratch slices are reused
// across passes.
func (rm *ResourceManager) schedulePass(order []*Application, grants []grant) ([]*Application, []grant) {
	rm.mu.Lock()
	rm.ingestLocked()
	// Snapshot the fairness order — tenant groups by weighted allocation,
	// apps within each group by allocation — flattened at pass start:
	// grants made during the pass reposition apps and groups immediately,
	// but (as with the old per-pass sort) the pass processes the order
	// fixed at its start.
	order = order[:0]
	for _, g := range rm.schedTenants {
		order = append(order, g.apps...)
	}
	for _, a := range order {
		if ev, ok := rm.scheduleOneForLocked(a); ok {
			grants = append(grants, grant{app: a, ev: ev})
		}
	}
	rm.mu.Unlock()
	return order, grants
}

// ingestLocked drains every application's staged requests into the RM's
// priority buckets — the batched request-delivery half of the heartbeat.
// Caller holds rm.mu.
func (rm *ResourceManager) ingestLocked() {
	for _, id := range rm.appOrder {
		a, ok := rm.apps[id]
		if !ok {
			continue
		}
		a.mu.Lock()
		var batch []*ContainerRequest
		if len(a.staged) > 0 && !a.finished {
			batch = a.staged
			a.staged = nil
		}
		a.mu.Unlock()
		for _, req := range batch {
			req.owner = a
			if !req.state.CompareAndSwap(reqStaged, reqQueued) {
				continue // cancelled while staged
			}
			q := a.sched.bucketLocked(req.Priority)
			q.reqs = append(q.reqs, req)
			a.sched.queuedLive++
		}
	}
}

// scheduleOneForLocked grants at most one container to app a, honouring
// request priority order (bucket order, FIFO within a bucket — the old
// stable sort), delay scheduling, and the tenant's memory quota: a grant
// that would push the tenant past its quota is withheld before placement
// is even attempted, so delay-scheduling counters do not advance while
// the tenant is quota-bound. Cancelled requests encountered during the
// walk are pruned in place. Caller holds rm.mu.
func (rm *ResourceManager) scheduleOneForLocked(a *Application) (Event, bool) {
	quotaLeft := int(^uint(0) >> 1) // unlimited
	if g := a.sched.group; g != nil && g.quotaMB > 0 {
		quotaLeft = g.quotaMB - g.allocMB
	}
	var ev Event
	granted := false
	for _, p := range a.sched.prios {
		q := a.sched.buckets[p]
		if len(q.reqs) == 0 {
			continue
		}
		w := 0
		for r := 0; r < len(q.reqs); r++ {
			req := q.reqs[r]
			if granted {
				q.reqs[w] = req
				w++
				continue
			}
			switch req.state.Load() {
			case reqCancelled:
				rm.settleLocked(req) // no-op if Cancel already settled
				continue             // prune
			case reqQueued:
				if req.Resource.MemoryMB > quotaLeft {
					q.reqs[w] = req // over quota: keep queued, try next pass
					w++
					continue
				}
				n, loc, ok := rm.placeLocked(req)
				if !ok {
					q.reqs[w] = req
					w++
					continue
				}
				c := rm.commitLocked(a, req, n, loc)
				if c == nil {
					// Lost to a concurrent cancel (settled, prune) or
					// the app finished (request kept, moot).
					if req.state.Load() == reqQueued {
						q.reqs[w] = req
						w++
					} else {
						rm.settleLocked(req)
					}
					continue
				}
				rm.settleLocked(req)
				ev = AllocatedEvent{Container: c, Request: req}
				granted = true
			default:
				// Allocated entries never stay queued; drop defensively.
			}
		}
		for i := w; i < len(q.reqs); i++ {
			q.reqs[i] = nil // release for GC
		}
		q.reqs = q.reqs[:w]
		if granted {
			break
		}
	}
	return ev, granted
}

// placeLocked picks a node for the request per delay scheduling, or
// reports that the request must wait this round. It consults only the
// sharded index and the schedAvail mirrors — no node locks. Caller holds
// rm.mu.
func (rm *ResourceManager) placeLocked(req *ContainerRequest) (*Node, Locality, bool) {
	var excluded map[NodeID]bool
	if len(req.Exclude) > 0 {
		excluded = make(map[NodeID]bool, len(req.Exclude))
		for _, id := range req.Exclude {
			excluded[id] = true
		}
	}
	fits := func(n *Node) bool {
		return n.shard != nil && req.Resource.FitsIn(n.schedAvail) && !excluded[n.ID]
	}

	hasNodePref := len(req.Nodes) > 0
	hasRackPref := len(req.Racks) > 0 || hasNodePref

	// Node-local.
	if hasNodePref {
		for _, id := range req.Nodes {
			if n, ok := rm.nodes[id]; ok && fits(n) {
				return n, LocalityNode, true
			}
		}
		if !rm.cfg.DisableDelayScheduling {
			if !req.RelaxLocality {
				return nil, 0, false
			}
			if req.missedNode < rm.cfg.NodeLocalityDelay {
				req.missedNode++
				return nil, 0, false
			}
		}
	}

	// Rack-local: preferred racks plus the racks of preferred nodes,
	// checked one shard head at a time. The candidate rack lists are tiny,
	// so duplicates are weeded with a linear scan, not a map.
	if hasRackPref {
		var rackBuf [8]string
		racks := append(rackBuf[:0], req.Racks...)
		for _, id := range req.Nodes {
			if n, ok := rm.nodes[id]; ok {
				racks = append(racks, n.Rack)
			}
		}
		var best *Node
		for i, r := range racks {
			dup := false
			for _, prev := range racks[:i] {
				if prev == r {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			s, ok := rm.shards[r]
			if !ok {
				continue
			}
			if n := s.best(req.Resource, excluded); n != nil && (best == nil || nodeLess(n, best)) {
				best = n
			}
		}
		if best != nil {
			return best, LocalityRack, true
		}
		if !rm.cfg.DisableDelayScheduling {
			if !req.RelaxLocality {
				return nil, 0, false
			}
			if req.missedRack < rm.cfg.RackLocalityDelay {
				req.missedRack++
				return nil, 0, false
			}
		}
	}

	// Anywhere: least-loaded live node that fits, one candidate per rack.
	var best *Node
	for _, s := range rm.shardList {
		if n := s.best(req.Resource, excluded); n != nil && (best == nil || nodeLess(n, best)) {
			best = n
		}
	}
	if best != nil {
		return best, LocalityAny, true
	}
	return nil, 0, false
}

// commitLocked finalises a placement: wins the request's allocate-vs-
// cancel race, charges the node, and registers the container with the
// app. It returns nil if the request was concurrently cancelled (state
// left reqCancelled) or the app finished (state restored to reqQueued).
// Caller holds rm.mu.
func (rm *ResourceManager) commitLocked(a *Application, req *ContainerRequest, n *Node, loc Locality) *Container {
	if !req.state.CompareAndSwap(reqQueued, reqAllocated) {
		return nil // cancelled won
	}
	rm.nextContainer++
	c := &Container{
		ID:        rm.nextContainer,
		App:       a.ID,
		Resource:  req.Resource,
		Locality:  loc,
		tenant:    a.Tenant,
		node:      n,
		rm:        rm,
		stop:      make(chan struct{}),
		allocTime: time.Now(),
	}
	rm.chargeNodeLocked(n, c)

	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		rm.unchargeNodeLocked(n, c)
		req.state.Store(reqQueued) // roll back; the app is going away
		return nil
	}
	a.containers[c.ID] = c
	a.allocated = a.allocated.Add(req.Resource)
	a.mu.Unlock()
	rm.appAllocChangedLocked(a, req.Resource.MemoryMB)
	rm.cfg.Timeline.Record(timeline.Event{
		Type: timeline.ContainerAllocated, Tenant: a.Tenant,
		Node: string(n.ID), Container: int64(c.ID), Info: loc.String(),
	})
	return c
}

// maybePreempt enforces instantaneous weighted fair share across tenant
// groups: when a group with unmet demand has waited below its weighted
// share for at least PreemptionStarvation, the newest containers of the
// most-over-share groups are killed with StopPreempted until shares
// balance. Untenanted apps are their own singleton groups of weight 1,
// so with no tenants configured this is the old per-app preemption.
// Called only from the RM loop goroutine; starvedSince needs no lock.
func (rm *ResourceManager) maybePreempt() {
	rm.mu.Lock()
	if time.Since(rm.lastPreempt) < rm.cfg.PreemptionInterval {
		rm.mu.Unlock()
		return
	}
	rm.lastPreempt = time.Now()
	type gstate struct {
		g       *tenantGroup
		weight  int
		apps    []*Application
		held    int
		pending int
		share   int
	}
	groups := make([]gstate, 0, len(rm.schedTenants))
	for _, g := range rm.schedTenants {
		groups = append(groups, gstate{
			g: g, weight: g.weight,
			apps: append([]*Application(nil), g.apps...),
		})
	}
	totalMem := rm.capTotal.MemoryMB
	rm.mu.Unlock()

	// Demand/holdings are computed outside rm.mu (PendingRequests takes
	// rm.mu → a.mu itself).
	sumW := 0
	active := groups[:0]
	for _, s := range groups {
		for _, a := range s.apps {
			s.held += a.Allocated().MemoryMB
			s.pending += a.PendingRequests()
		}
		if s.held > 0 || s.pending > 0 {
			sumW += s.weight
			active = append(active, s)
		} else {
			s.g.starvedSince = time.Time{}
		}
	}
	if len(active) < 2 || totalMem == 0 || sumW == 0 {
		for _, s := range active {
			s.g.starvedSince = time.Time{}
		}
		return
	}

	now := time.Now()
	var starved, over []gstate
	for i := range active {
		s := &active[i]
		s.share = totalMem * s.weight / sumW
		switch {
		case s.pending > 0 && s.held < s.share:
			if s.g.starvedSince.IsZero() {
				s.g.starvedSince = now
			}
			if now.Sub(s.g.starvedSince) >= rm.cfg.PreemptionStarvation {
				starved = append(starved, *s)
			}
		default:
			s.g.starvedSince = time.Time{}
			if s.held > s.share {
				over = append(over, *s)
			}
		}
	}
	if len(starved) == 0 || len(over) == 0 {
		return
	}
	// Most over share first: the worst offender pays before marginal ones.
	sort.Slice(over, func(i, j int) bool {
		return over[i].held-over[i].share > over[j].held-over[j].share
	})
	for _, s := range over {
		excess := s.held - s.share
		var victims []*Container
		for _, a := range s.apps {
			a.mu.Lock()
			for _, c := range a.containers {
				victims = append(victims, c)
			}
			a.mu.Unlock()
		}
		// Newest first: least sunk work lost.
		sort.Slice(victims, func(i, j int) bool {
			return victims[i].allocTime.After(victims[j].allocTime)
		})
		for _, c := range victims {
			if excess <= 0 {
				break
			}
			excess -= c.Resource.MemoryMB
			rm.stopContainer(c, StopPreempted, true)
		}
	}
}
