package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tez/internal/mailbox"
	"tez/internal/timeline"
)

// ResourceManager is the cluster-wide allocator: the stand-in for the YARN
// RM. It owns the nodes, runs the scheduling heartbeat, and notifies
// applications through their event mailboxes.
type ResourceManager struct {
	cfg Config

	mu       sync.Mutex
	nodes    map[NodeID]*Node
	nodeList []*Node // stable order for deterministic scheduling
	apps     map[AppID]*Application
	appOrder []AppID // submission order

	nextContainer ContainerID
	nextApp       AppID

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	lastPreempt time.Time
}

// New builds a cluster per cfg and starts the scheduling loop.
func New(cfg Config) *ResourceManager {
	cfg = cfg.withDefaults()
	rm := &ResourceManager{
		cfg:    cfg,
		nodes:  make(map[NodeID]*Node),
		apps:   make(map[AppID]*Application),
		stopCh: make(chan struct{}),
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			ID:         NodeID(fmt.Sprintf("node-%03d", i)),
			Rack:       fmt.Sprintf("rack-%02d", i/cfg.NodesPerRack),
			capacity:   cfg.NodeResource,
			live:       true,
			containers: make(map[ContainerID]*Container),
		}
		rm.nodes[n.ID] = n
		rm.nodeList = append(rm.nodeList, n)
	}
	rm.wg.Add(1)
	go rm.loop()
	return rm
}

// Stop halts the scheduler. Outstanding applications keep their containers;
// Stop is for test/bench teardown.
func (rm *ResourceManager) Stop() {
	rm.stopOnce.Do(func() { close(rm.stopCh) })
	rm.wg.Wait()
}

// Config returns the cluster configuration (after defaulting).
func (rm *ResourceManager) Config() Config { return rm.cfg }

// Nodes returns the ids of all nodes in stable order.
func (rm *ResourceManager) Nodes() []NodeID {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make([]NodeID, len(rm.nodeList))
	for i, n := range rm.nodeList {
		out[i] = n.ID
	}
	return out
}

// RackOf returns the rack of a node ("" if unknown).
func (rm *ResourceManager) RackOf(id NodeID) string {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if n, ok := rm.nodes[id]; ok {
		return n.Rack
	}
	return ""
}

// TotalResources returns the live cluster capacity.
func (rm *ResourceManager) TotalResources() Resource {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var t Resource
	for _, n := range rm.nodeList {
		n.mu.Lock()
		if n.live {
			t = t.Add(n.capacity)
		}
		n.mu.Unlock()
	}
	return t
}

// UsedResources returns currently allocated resources across the cluster.
func (rm *ResourceManager) UsedResources() Resource {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var t Resource
	for _, n := range rm.nodeList {
		n.mu.Lock()
		t = t.Add(n.used)
		n.mu.Unlock()
	}
	return t
}

// AllocatedByApp snapshots per-application holdings (for utilisation
// timelines, Figure 12).
func (rm *ResourceManager) AllocatedByApp() map[string]Resource {
	rm.mu.Lock()
	apps := make([]*Application, 0, len(rm.apps))
	for _, a := range rm.apps {
		apps = append(apps, a)
	}
	rm.mu.Unlock()
	out := make(map[string]Resource, len(apps))
	for _, a := range apps {
		out[a.Name] = a.Allocated()
	}
	return out
}

// Submit registers a new application and returns its handle.
func (rm *ResourceManager) Submit(name string) *Application {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.nextApp++
	a := &Application{
		ID:         rm.nextApp,
		Name:       name,
		rm:         rm,
		events:     mailbox.New[Event](),
		containers: make(map[ContainerID]*Container),
	}
	rm.apps[a.ID] = a
	rm.appOrder = append(rm.appOrder, a.ID)
	return a
}

func (rm *ResourceManager) removeApp(id AppID) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	delete(rm.apps, id)
}

// FailNode simulates losing a machine: its containers are killed with
// StopNodeLost and every application is told about the node failure.
// Wiring the same failure into the DFS and shuffle service is the job of
// platform.Platform.
func (rm *ResourceManager) FailNode(id NodeID) {
	rm.failNode(id, false)
}

// DecommissionNode is a planned outage: same effects, flagged as planned.
func (rm *ResourceManager) DecommissionNode(id NodeID) {
	rm.failNode(id, true)
}

func (rm *ResourceManager) failNode(id NodeID, planned bool) {
	rm.mu.Lock()
	n, ok := rm.nodes[id]
	if !ok {
		rm.mu.Unlock()
		return
	}
	n.mu.Lock()
	n.live = false
	victims := make([]*Container, 0, len(n.containers))
	for _, c := range n.containers {
		victims = append(victims, c)
	}
	n.mu.Unlock()
	apps := make([]*Application, 0, len(rm.apps))
	for _, a := range rm.apps {
		apps = append(apps, a)
	}
	rm.mu.Unlock()

	for _, c := range victims {
		rm.stopContainer(c, StopNodeLost, true)
	}
	typ := timeline.NodeFailed
	if planned {
		typ = timeline.NodeDecommissioned
	}
	rm.cfg.Timeline.Record(timeline.Event{Type: typ, Node: string(id)})
	for _, a := range apps {
		a.events.Put(NodeFailedEvent{Node: id, Decommissioned: planned})
	}
}

// RestoreNode brings a failed node back (empty).
func (rm *ResourceManager) RestoreNode(id NodeID) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if n, ok := rm.nodes[id]; ok {
		n.mu.Lock()
		n.live = true
		n.used = Resource{}
		n.containers = make(map[ContainerID]*Container)
		n.mu.Unlock()
	}
}

// stopContainer tears a container down for the given reason, returning its
// resources to the node. notify controls whether the owner gets a
// ContainerStoppedEvent (involuntary stops only; an app that called Release
// already knows).
func (rm *ResourceManager) stopContainer(c *Container, reason StopReason, notify bool) {
	c.mu.Lock()
	if c.released {
		c.mu.Unlock()
		return
	}
	c.released = true
	close(c.stop)
	c.mu.Unlock()

	n := c.node
	n.mu.Lock()
	if _, ok := n.containers[c.ID]; ok {
		delete(n.containers, c.ID)
		n.used = n.used.Sub(c.Resource)
	}
	n.mu.Unlock()

	rm.mu.Lock()
	app := rm.apps[c.App]
	rm.mu.Unlock()
	if app != nil {
		app.removeContainer(c)
		if notify {
			rm.cfg.Timeline.Record(timeline.Event{
				Type: timeline.ContainerStopped,
				Node: string(n.ID), Container: int64(c.ID), Info: reason.String(),
			})
			app.events.Put(ContainerStoppedEvent{ContainerID: c.ID, Node: n.ID, Reason: reason})
		}
	}
}

// ScheduleNow forces an immediate scheduling pass (deterministic tests).
func (rm *ResourceManager) ScheduleNow() { rm.scheduleOnce() }

func (rm *ResourceManager) loop() {
	defer rm.wg.Done()
	t := time.NewTicker(rm.cfg.ScheduleInterval)
	defer t.Stop()
	for {
		select {
		case <-rm.stopCh:
			return
		case <-t.C:
			rm.scheduleOnce()
			if rm.cfg.FairPreemption {
				rm.maybePreempt()
			}
		}
	}
}

// scheduleOnce runs allocation passes until no progress: each pass orders
// applications most-starved-first and grants each at most one container,
// which approximates YARN fair scheduling.
func (rm *ResourceManager) scheduleOnce() {
	for {
		if !rm.schedulePass() {
			return
		}
	}
}

func (rm *ResourceManager) schedulePass() bool {
	rm.mu.Lock()
	apps := make([]*Application, 0, len(rm.apps))
	for _, id := range rm.appOrder {
		if a, ok := rm.apps[id]; ok {
			apps = append(apps, a)
		}
	}
	rm.mu.Unlock()

	sort.SliceStable(apps, func(i, j int) bool {
		return apps[i].Allocated().MemoryMB < apps[j].Allocated().MemoryMB
	})

	progress := false
	for _, a := range apps {
		if rm.scheduleOneFor(a) {
			progress = true
		}
	}
	return progress
}

// scheduleOneFor grants at most one container to app a, honouring request
// priority order and delay scheduling. It reports whether it allocated.
func (rm *ResourceManager) scheduleOneFor(a *Application) bool {
	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		return false
	}
	// Compact cancelled requests and order by priority, stable on arrival.
	live := a.pending[:0]
	for _, r := range a.pending {
		if !r.cancelled {
			live = append(live, r)
		}
	}
	a.pending = live
	reqs := make([]*ContainerRequest, len(a.pending))
	copy(reqs, a.pending)
	a.mu.Unlock()
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Priority < reqs[j].Priority })

	for _, req := range reqs {
		node, loc, ok := rm.place(req)
		if !ok {
			continue
		}
		c := rm.allocate(a, req, node, loc)
		if c == nil {
			continue
		}
		a.events.Put(AllocatedEvent{Container: c, Request: req})
		return true
	}
	return false
}

// place picks a node for the request per delay scheduling, or reports that
// the request must wait this round.
func (rm *ResourceManager) place(req *ContainerRequest) (*Node, Locality, bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()

	var excluded map[NodeID]bool
	if len(req.Exclude) > 0 {
		excluded = make(map[NodeID]bool, len(req.Exclude))
		for _, id := range req.Exclude {
			excluded[id] = true
		}
	}
	fits := func(n *Node) bool {
		if excluded[n.ID] {
			return false
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.live && req.Resource.FitsIn(n.capacity.Sub(n.used))
	}

	hasNodePref := len(req.Nodes) > 0
	hasRackPref := len(req.Racks) > 0 || hasNodePref

	// Node-local.
	if hasNodePref {
		for _, id := range req.Nodes {
			if n, ok := rm.nodes[id]; ok && fits(n) {
				return n, LocalityNode, true
			}
		}
		if !rm.cfg.DisableDelayScheduling {
			if !req.RelaxLocality {
				return nil, 0, false
			}
			if req.missedNode < rm.cfg.NodeLocalityDelay {
				req.missedNode++
				return nil, 0, false
			}
		}
	}

	// Rack-local: preferred racks plus the racks of preferred nodes.
	if hasRackPref {
		racks := map[string]bool{}
		for _, r := range req.Racks {
			racks[r] = true
		}
		for _, id := range req.Nodes {
			if n, ok := rm.nodes[id]; ok {
				racks[n.Rack] = true
			}
		}
		var best *Node
		for _, n := range rm.nodeList {
			if racks[n.Rack] && fits(n) && (best == nil || moreAvailable(n, best)) {
				best = n
			}
		}
		if best != nil {
			return best, LocalityRack, true
		}
		if !rm.cfg.DisableDelayScheduling {
			if !req.RelaxLocality {
				return nil, 0, false
			}
			if req.missedRack < rm.cfg.RackLocalityDelay {
				req.missedRack++
				return nil, 0, false
			}
		}
	}

	// Anywhere: least-loaded live node that fits.
	var best *Node
	for _, n := range rm.nodeList {
		if fits(n) && (best == nil || moreAvailable(n, best)) {
			best = n
		}
	}
	if best != nil {
		loc := LocalityAny
		if !hasNodePref && !hasRackPref {
			loc = LocalityAny
		}
		return best, loc, true
	}
	return nil, 0, false
}

func moreAvailable(a, b *Node) bool {
	aa, ba := a.Available(), b.Available()
	if aa.MemoryMB != ba.MemoryMB {
		return aa.MemoryMB > ba.MemoryMB
	}
	return a.ID < b.ID
}

// allocate commits the placement: charges the node, registers the
// container with the app, and removes the satisfied request.
func (rm *ResourceManager) allocate(a *Application, req *ContainerRequest, n *Node, loc Locality) *Container {
	rm.mu.Lock()
	rm.nextContainer++
	cid := rm.nextContainer
	rm.mu.Unlock()

	c := &Container{
		ID:        cid,
		App:       a.ID,
		Resource:  req.Resource,
		Locality:  loc,
		node:      n,
		rm:        rm,
		stop:      make(chan struct{}),
		allocTime: time.Now(),
	}

	n.mu.Lock()
	if !n.live || !req.Resource.FitsIn(n.capacity.Sub(n.used)) {
		n.mu.Unlock()
		return nil
	}
	n.used = n.used.Add(req.Resource)
	n.containers[c.ID] = c
	n.mu.Unlock()

	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		n.mu.Lock()
		delete(n.containers, c.ID)
		n.used = n.used.Sub(req.Resource)
		n.mu.Unlock()
		return nil
	}
	// Remove the satisfied request from pending.
	for i, r := range a.pending {
		if r == req {
			a.pending = append(a.pending[:i], a.pending[i+1:]...)
			break
		}
	}
	a.containers[c.ID] = c
	a.allocated = a.allocated.Add(req.Resource)
	a.mu.Unlock()
	rm.cfg.Timeline.Record(timeline.Event{
		Type: timeline.ContainerAllocated,
		Node: string(n.ID), Container: int64(c.ID), Info: loc.String(),
	})
	return c
}

// maybePreempt enforces instantaneous fair share: when an application with
// unmet demand sits below its share while another holds more than its
// share, the newest containers of the over-share application are killed
// with StopPreempted until shares balance.
func (rm *ResourceManager) maybePreempt() {
	rm.mu.Lock()
	if time.Since(rm.lastPreempt) < rm.cfg.PreemptionInterval {
		rm.mu.Unlock()
		return
	}
	rm.lastPreempt = time.Now()
	apps := make([]*Application, 0, len(rm.apps))
	for _, id := range rm.appOrder {
		if a, ok := rm.apps[id]; ok {
			apps = append(apps, a)
		}
	}
	rm.mu.Unlock()

	type state struct {
		app     *Application
		held    int
		pending int
	}
	var states []state
	active := 0
	totalMem := rm.TotalResources().MemoryMB
	for _, a := range apps {
		s := state{app: a, held: a.Allocated().MemoryMB, pending: a.PendingRequests()}
		if s.held > 0 || s.pending > 0 {
			active++
		}
		states = append(states, s)
	}
	if active < 2 || totalMem == 0 {
		return
	}
	share := totalMem / active

	var starved, over []state
	for _, s := range states {
		switch {
		case s.pending > 0 && s.held < share:
			starved = append(starved, s)
		case s.held > share:
			over = append(over, s)
		}
	}
	if len(starved) == 0 || len(over) == 0 {
		return
	}
	for _, s := range over {
		excess := s.held - share
		var victims []*Container
		s.app.mu.Lock()
		for _, c := range s.app.containers {
			victims = append(victims, c)
		}
		s.app.mu.Unlock()
		// Newest first: least sunk work lost.
		sort.Slice(victims, func(i, j int) bool {
			return victims[i].allocTime.After(victims[j].allocTime)
		})
		for _, c := range victims {
			if excess <= 0 {
				break
			}
			excess -= c.Resource.MemoryMB
			rm.stopContainer(c, StopPreempted, true)
		}
	}
}
