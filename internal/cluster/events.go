package cluster

// Event is a resource-manager → application-master notification. An
// application drains its event mailbox; events are never dropped and never
// block the RM.
type Event interface{ isClusterEvent() }

// AllocatedEvent delivers a newly allocated container for a request.
// Cookie is the request's cookie, so the AM can match it to the task that
// asked for it.
type AllocatedEvent struct {
	Container *Container
	Request   *ContainerRequest
}

// ContainerStoppedEvent reports that the platform terminated a container
// involuntarily (preemption or node loss) or confirms a voluntary release.
type ContainerStoppedEvent struct {
	ContainerID ContainerID
	Node        NodeID
	Reason      StopReason
}

// NodeFailedEvent reports a node failure or decommission. AMs use it to
// proactively re-execute tasks whose outputs lived there (§4.3).
type NodeFailedEvent struct {
	Node           NodeID
	Decommissioned bool
}

func (AllocatedEvent) isClusterEvent()        {}
func (ContainerStoppedEvent) isClusterEvent() {}
func (NodeFailedEvent) isClusterEvent()       {}
