package cluster

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: any mix of requests whose total fits the cluster is fully
// satisfied, and allocation never exceeds any node's capacity.
func TestQuickAllRequestsSatisfiedWithinCapacity(t *testing.T) {
	f := func(sizesRaw []uint8) bool {
		if len(sizesRaw) > 24 {
			sizesRaw = sizesRaw[:24]
		}
		cfg := Config{
			Nodes:            4,
			NodesPerRack:     2,
			NodeResource:     Resource{MemoryMB: 8192, VCores: 64},
			ScheduleInterval: 100 * time.Microsecond,
		}
		rm := New(cfg)
		defer rm.Stop()
		app := rm.Submit("quick")
		defer app.Unregister()

		// First-fit packing of items ≤ maxItem into B bins of size C is
		// guaranteed to succeed when total ≤ B*(C-maxItem): keep headroom
		// so the property tests the scheduler, not bin-packing theory.
		const headroom = 4 * (8192 - 2048)
		total := 0
		want := 0
		for _, raw := range sizesRaw {
			mem := (int(raw%8) + 1) * 256 // 256..2048 MB
			if total+mem > headroom {
				continue
			}
			total += mem
			want++
			app.Request(&ContainerRequest{Resource: Resource{MemoryMB: mem, VCores: 1}})
		}
		deadline := time.Now().Add(2 * time.Second)
		for app.HeldContainers() < want && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
		if app.HeldContainers() != want {
			return false
		}
		// No node overcommitted.
		used := rm.UsedResources()
		return used.MemoryMB == total && used.MemoryMB <= rm.TotalResources().MemoryMB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
