package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Nodes:            4,
		NodesPerRack:     2,
		NodeResource:     Resource{MemoryMB: 4096, VCores: 4},
		ScheduleInterval: 200 * time.Microsecond,
	}
}

// waitEvent drains events until one matches pred or the deadline passes.
func waitEvent(t *testing.T, a *Application, d time.Duration, pred func(Event) bool) Event {
	t.Helper()
	deadline := time.After(d)
	got := make(chan Event, 1)
	go func() {
		for {
			e, ok := a.Events().Get()
			if !ok {
				return
			}
			if pred(e) {
				got <- e
				return
			}
		}
	}()
	select {
	case e := <-got:
		return e
	case <-deadline:
		t.Fatalf("timed out waiting for event")
		return nil
	}
}

func TestResourceArithmetic(t *testing.T) {
	a := Resource{MemoryMB: 1024, VCores: 2}
	b := Resource{MemoryMB: 512, VCores: 1}
	if got := a.Add(b); got != (Resource{1536, 3}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Resource{512, 1}) {
		t.Fatalf("Sub = %v", got)
	}
	if !b.FitsIn(a) || a.FitsIn(b) {
		t.Fatal("FitsIn wrong")
	}
	if !(Resource{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestBasicAllocation(t *testing.T) {
	rm := New(testConfig())
	defer rm.Stop()
	app := rm.Submit("app")
	defer app.Unregister()
	req := &ContainerRequest{Resource: Resource{1024, 1}, Cookie: "t1"}
	app.Request(req)
	e := waitEvent(t, app, time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })
	ae := e.(AllocatedEvent)
	if ae.Request.Cookie != "t1" {
		t.Fatalf("cookie = %v", ae.Request.Cookie)
	}
	if got := app.Allocated(); got != (Resource{1024, 1}) {
		t.Fatalf("Allocated = %v", got)
	}
	if app.PendingRequests() != 0 {
		t.Fatal("request still pending after allocation")
	}
}

func TestNodeLocalAllocation(t *testing.T) {
	rm := New(testConfig())
	defer rm.Stop()
	app := rm.Submit("app")
	defer app.Unregister()
	want := rm.Nodes()[2]
	app.Request(&ContainerRequest{
		Resource: Resource{1024, 1}, Nodes: []NodeID{want}, RelaxLocality: true,
	})
	e := waitEvent(t, app, time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })
	c := e.(AllocatedEvent).Container
	if c.Node() != want {
		t.Fatalf("allocated on %s, want %s", c.Node(), want)
	}
	if c.Locality != LocalityNode {
		t.Fatalf("locality = %v", c.Locality)
	}
}

func TestDelaySchedulingRelaxesToRackThenAny(t *testing.T) {
	cfg := testConfig()
	cfg.NodeLocalityDelay = 1
	cfg.RackLocalityDelay = 1
	rm := New(cfg)
	defer rm.Stop()

	// Fill node-000 completely so a node-000 preference cannot be met.
	hog := rm.Submit("hog")
	defer hog.Unregister()
	hog.Request(&ContainerRequest{Resource: Resource{4096, 4}, Nodes: []NodeID{"node-000"}, RelaxLocality: true})
	waitEvent(t, hog, time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })

	app := rm.Submit("app")
	defer app.Unregister()
	app.Request(&ContainerRequest{Resource: Resource{1024, 1}, Nodes: []NodeID{"node-000"}, RelaxLocality: true})
	e := waitEvent(t, app, 2*time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })
	c := e.(AllocatedEvent).Container
	// node-001 shares rack-00 with node-000: expect rack locality.
	if c.Locality != LocalityRack {
		t.Fatalf("locality = %v on %s, want RACK_LOCAL", c.Locality, c.Node())
	}
	if rm.RackOf(c.Node()) != "rack-00" {
		t.Fatalf("allocated on rack %s", rm.RackOf(c.Node()))
	}
}

func TestStrictLocalityNeverRelaxes(t *testing.T) {
	cfg := testConfig()
	cfg.NodeLocalityDelay = 1
	rm := New(cfg)
	defer rm.Stop()
	hog := rm.Submit("hog")
	defer hog.Unregister()
	hog.Request(&ContainerRequest{Resource: Resource{4096, 4}, Nodes: []NodeID{"node-000"}, RelaxLocality: true})
	waitEvent(t, hog, time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })

	app := rm.Submit("app")
	defer app.Unregister()
	app.Request(&ContainerRequest{Resource: Resource{1024, 1}, Nodes: []NodeID{"node-000"}, RelaxLocality: false})
	time.Sleep(20 * time.Millisecond)
	if app.Allocated().MemoryMB != 0 {
		t.Fatal("strict-locality request was relaxed")
	}
	// Free the node: the strict request must now be satisfied there.
	hog.Unregister()
	e := waitEvent(t, app, 2*time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })
	if c := e.(AllocatedEvent).Container; c.Node() != "node-000" {
		t.Fatalf("allocated on %s", c.Node())
	}
}

func TestContainerExecAndReuse(t *testing.T) {
	cfg := testConfig()
	rm := New(cfg)
	defer rm.Stop()
	app := rm.Submit("app")
	defer app.Unregister()
	app.Request(&ContainerRequest{Resource: Resource{1024, 1}})
	e := waitEvent(t, app, time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })
	c := e.(AllocatedEvent).Container

	if err := c.Exec(func(<-chan struct{}) error { return nil }); !errors.Is(err, ErrContainerNotReady) {
		t.Fatalf("Exec before Launch: %v", err)
	}
	if err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ran := false
		if err := c.Exec(func(<-chan struct{}) error { ran = true; return nil }); err != nil || !ran {
			t.Fatalf("Exec #%d: err=%v ran=%v", i, err, ran)
		}
	}
	if c.ExecCount() != 3 {
		t.Fatalf("ExecCount = %d", c.ExecCount())
	}
	app.Release(c)
	if err := c.Exec(func(<-chan struct{}) error { return nil }); err == nil {
		t.Fatal("Exec after release succeeded")
	}
	if app.HeldContainers() != 0 {
		t.Fatal("container still held after release")
	}
}

func TestExecReturnsTaskError(t *testing.T) {
	rm := New(testConfig())
	defer rm.Stop()
	app := rm.Submit("app")
	defer app.Unregister()
	app.Request(&ContainerRequest{Resource: Resource{1024, 1}})
	e := waitEvent(t, app, time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })
	c := e.(AllocatedEvent).Container
	if err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := c.Exec(func(<-chan struct{}) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Exec error = %v", err)
	}
}

func TestNodeFailureKillsContainersAndNotifies(t *testing.T) {
	rm := New(testConfig())
	defer rm.Stop()
	app := rm.Submit("app")
	defer app.Unregister()
	app.Request(&ContainerRequest{Resource: Resource{1024, 1}, Nodes: []NodeID{"node-001"}, RelaxLocality: true})
	e := waitEvent(t, app, time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })
	c := e.(AllocatedEvent).Container
	if err := c.Launch(); err != nil {
		t.Fatal(err)
	}

	execDone := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		execDone <- c.Exec(func(stop <-chan struct{}) error {
			close(started)
			<-stop
			return nil
		})
	}()
	<-started
	rm.FailNode(c.Node())

	if err := <-execDone; !errors.Is(err, ErrContainerKilled) {
		t.Fatalf("Exec after node failure: %v", err)
	}
	waitEvent(t, app, time.Second, func(e Event) bool {
		se, ok := e.(ContainerStoppedEvent)
		return ok && se.Reason == StopNodeLost && se.ContainerID == c.ID
	})
	waitEvent(t, app, time.Second, func(e Event) bool {
		ne, ok := e.(NodeFailedEvent)
		return ok && ne.Node == c.Node()
	})
	if app.HeldContainers() != 0 {
		t.Fatal("container still accounted after node loss")
	}
}

func TestCancelRequest(t *testing.T) {
	cfg := testConfig()
	rm := New(cfg)
	defer rm.Stop()
	hog := rm.Submit("hog")
	defer hog.Unregister()
	// Consume the whole cluster so new requests stay pending.
	for i := 0; i < 4; i++ {
		hog.Request(&ContainerRequest{Resource: Resource{4096, 4}})
	}
	deadline := time.Now().Add(time.Second)
	for hog.Allocated().MemoryMB < 4*4096 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	app := rm.Submit("app")
	defer app.Unregister()
	req := &ContainerRequest{Resource: Resource{1024, 1}}
	app.Request(req)
	app.Cancel(req)
	hog.Unregister()
	time.Sleep(10 * time.Millisecond)
	if app.Allocated().MemoryMB != 0 {
		t.Fatal("cancelled request was allocated")
	}
	if app.PendingRequests() != 0 {
		t.Fatal("cancelled request still counted as pending")
	}
}

func TestFairnessAcrossApps(t *testing.T) {
	cfg := testConfig() // 4 nodes * 4096MB = 16384MB
	rm := New(cfg)
	defer rm.Stop()
	a := rm.Submit("a")
	defer a.Unregister()
	b := rm.Submit("b")
	defer b.Unregister()
	for i := 0; i < 16; i++ {
		a.Request(&ContainerRequest{Resource: Resource{1024, 1}})
		b.Request(&ContainerRequest{Resource: Resource{1024, 1}})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if rm.UsedResources().MemoryMB >= 16384 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	am, bm := a.Allocated().MemoryMB, b.Allocated().MemoryMB
	if am+bm != 16384 {
		t.Fatalf("cluster not fully allocated: a=%d b=%d", am, bm)
	}
	if am != bm {
		t.Fatalf("unfair split: a=%d b=%d", am, bm)
	}
}

func TestFairPreemption(t *testing.T) {
	cfg := testConfig()
	cfg.FairPreemption = true
	cfg.PreemptionInterval = time.Millisecond
	rm := New(cfg)
	defer rm.Stop()

	hog := rm.Submit("hog")
	defer hog.Unregister()
	for i := 0; i < 4; i++ {
		hog.Request(&ContainerRequest{Resource: Resource{4096, 4}})
	}
	deadline := time.Now().Add(time.Second)
	for hog.Allocated().MemoryMB < 16384 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	late := rm.Submit("late")
	defer late.Unregister()
	late.Request(&ContainerRequest{Resource: Resource{4096, 4}})

	waitEvent(t, hog, 2*time.Second, func(e Event) bool {
		se, ok := e.(ContainerStoppedEvent)
		return ok && se.Reason == StopPreempted
	})
	waitEvent(t, late, 2*time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })
}

func TestUnregisterReleasesEverything(t *testing.T) {
	rm := New(testConfig())
	defer rm.Stop()
	app := rm.Submit("app")
	for i := 0; i < 3; i++ {
		app.Request(&ContainerRequest{Resource: Resource{1024, 1}})
	}
	deadline := time.Now().Add(time.Second)
	for app.Allocated().MemoryMB < 3*1024 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	app.Unregister()
	if got := rm.UsedResources(); !got.IsZero() {
		t.Fatalf("resources still used after unregister: %v", got)
	}
	app.Unregister() // idempotent
}

func TestAllocationNeverExceedsNodeCapacity(t *testing.T) {
	cfg := testConfig()
	rm := New(cfg)
	defer rm.Stop()
	var apps []*Application
	for i := 0; i < 5; i++ {
		a := rm.Submit(fmt.Sprintf("app-%d", i))
		apps = append(apps, a)
		for j := 0; j < 10; j++ {
			a.Request(&ContainerRequest{Resource: Resource{768, 1}})
		}
	}
	defer func() {
		for _, a := range apps {
			a.Unregister()
		}
	}()
	time.Sleep(30 * time.Millisecond)
	used := rm.UsedResources()
	total := rm.TotalResources()
	if used.MemoryMB > total.MemoryMB || used.VCores > total.VCores {
		t.Fatalf("overallocation: used %v of %v", used, total)
	}
}

func TestLaunchOverheadCharged(t *testing.T) {
	cfg := testConfig()
	cfg.ContainerLaunchOverhead = 20 * time.Millisecond
	cfg.WarmupPenalty = 10 * time.Millisecond
	rm := New(cfg)
	defer rm.Stop()
	app := rm.Submit("app")
	defer app.Unregister()
	app.Request(&ContainerRequest{Resource: Resource{1024, 1}})
	e := waitEvent(t, app, time.Second, func(e Event) bool { _, ok := e.(AllocatedEvent); return ok })
	c := e.(AllocatedEvent).Container

	start := time.Now()
	if err := c.Launch(); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec(func(<-chan struct{}) error { return nil }); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	if cold < 30*time.Millisecond {
		t.Fatalf("cold start took %v, want >= 30ms", cold)
	}
	start = time.Now()
	if err := c.Exec(func(<-chan struct{}) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if warm := time.Since(start); warm > 5*time.Millisecond {
		t.Fatalf("warm exec took %v, want fast", warm)
	}
}
