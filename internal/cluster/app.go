package cluster

import (
	"sync"
	"sync/atomic"

	"tez/internal/mailbox"
)

// ContainerRequest asks the RM for one container. Preferences follow the
// YARN model: preferred nodes, preferred racks, and whether locality may be
// relaxed. Cookie is returned with the allocation.
type ContainerRequest struct {
	Priority      int
	Resource      Resource
	Nodes         []NodeID
	Racks         []string
	RelaxLocality bool
	// Exclude lists nodes the request must not be placed on (AM-side
	// blacklisting). Exclusion is best-effort hard: if every fitting node
	// is excluded the request simply waits.
	Exclude []NodeID
	Cookie  any

	// state is the request lifecycle (see queues.go): staged → queued →
	// allocated | cancelled, with CAS transitions so cancel and allocate
	// are mutually exclusive.
	state atomic.Int32

	// Everything below is owned by the RM once the request is ingested
	// and is only touched under rm.mu.
	owner      *Application
	settled    bool // queuedLive accounting done (exactly-once)
	missedNode int  // scheduling opportunities missed (delay scheduling)
	missedRack int
}

// Application is an AM's handle onto the resource manager. All
// notifications arrive through Events().
type Application struct {
	ID   AppID
	Name string
	// Tenant is the scheduling group the app was submitted under ("" for
	// a private share). Immutable after SubmitTenant.
	Tenant string

	rm     *ResourceManager
	events *mailbox.Mailbox[Event]

	mu         sync.Mutex
	staged     []*ContainerRequest // new requests; RM drains in batch per pass
	containers map[ContainerID]*Container
	allocated  Resource
	finished   bool

	// sched is RM-owned scheduling state, guarded by rm.mu (not a.mu).
	sched appSched
}

// Events returns the mailbox carrying RM→AM notifications.
func (a *Application) Events() *mailbox.Mailbox[Event] { return a.events }

// Request enqueues container requests; the scheduler ingests the staged
// batch on its next heartbeat. Requests stay app-owned (a.mu) until then,
// so the caller never contends with a scheduling pass.
func (a *Application) Request(reqs ...*ContainerRequest) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return
	}
	a.staged = append(a.staged, reqs...)
}

// Cancel withdraws a pending request. Cancelling an already-satisfied or
// unknown request is a no-op. The CAS guarantees a request is never both
// cancelled and allocated: whichever transition wins, the other side
// observes it and backs off.
func (a *Application) Cancel(req *ContainerRequest) {
	if req.state.CompareAndSwap(reqStaged, reqCancelled) {
		return // dropped at ingestion
	}
	if req.state.CompareAndSwap(reqQueued, reqCancelled) {
		// RM-owned by now: settle the pending count eagerly so
		// PendingRequests reflects the cancellation immediately. The
		// bucket entry itself is pruned lazily by the next pass walk.
		a.rm.mu.Lock()
		a.rm.settleLocked(req)
		a.rm.mu.Unlock()
	}
	// Allocated or already cancelled: no-op.
}

// PendingRequests returns the number of outstanding (non-cancelled)
// container requests, staged plus queued. Both locks are held together
// (rm.mu → a.mu is the package lock order) so the snapshot is consistent
// with a concurrent ingest.
func (a *Application) PendingRequests() int {
	a.rm.mu.Lock()
	defer a.rm.mu.Unlock()
	a.mu.Lock()
	n := a.sched.queuedLive
	for _, r := range a.staged {
		if r.state.Load() == reqStaged {
			n++
		}
	}
	a.mu.Unlock()
	return n
}

// Allocated returns the application's currently held resources.
func (a *Application) Allocated() Resource {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocated
}

// HeldContainers returns the number of containers currently held.
func (a *Application) HeldContainers() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.containers)
}

// Release returns a container to the cluster. The container's work, if
// any, is killed.
func (a *Application) Release(c *Container) {
	a.rm.stopContainer(c, StopReleased, false)
}

// Unregister releases everything the application holds and stops event
// delivery. Call exactly once when the AM exits.
func (a *Application) Unregister() {
	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		return
	}
	a.finished = true
	a.staged = nil
	var held []*Container
	for _, c := range a.containers {
		held = append(held, c)
	}
	a.mu.Unlock()
	for _, c := range held {
		a.rm.stopContainer(c, StopReleased, false)
	}
	a.events.Close()
	a.rm.removeApp(a)
}

// removeContainer detaches a container from the app's accounting,
// reporting whether it was still attached.
func (a *Application) removeContainer(c *Container) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.containers[c.ID]; !ok {
		return false
	}
	delete(a.containers, c.ID)
	a.allocated = a.allocated.Sub(c.Resource)
	return true
}
