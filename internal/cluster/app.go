package cluster

import (
	"sync"

	"tez/internal/mailbox"
)

// ContainerRequest asks the RM for one container. Preferences follow the
// YARN model: preferred nodes, preferred racks, and whether locality may be
// relaxed. Cookie is returned with the allocation.
type ContainerRequest struct {
	Priority      int
	Resource      Resource
	Nodes         []NodeID
	Racks         []string
	RelaxLocality bool
	// Exclude lists nodes the request must not be placed on (AM-side
	// blacklisting). Exclusion is best-effort hard: if every fitting node
	// is excluded the request simply waits.
	Exclude []NodeID
	Cookie  any

	// Scheduling opportunities missed at each level (delay scheduling).
	missedNode int
	missedRack int
	cancelled  bool
}

// Application is an AM's handle onto the resource manager. All
// notifications arrive through Events().
type Application struct {
	ID   AppID
	Name string

	rm     *ResourceManager
	events *mailbox.Mailbox[Event]

	mu         sync.Mutex
	pending    []*ContainerRequest
	containers map[ContainerID]*Container
	allocated  Resource
	finished   bool
}

// Events returns the mailbox carrying RM→AM notifications.
func (a *Application) Events() *mailbox.Mailbox[Event] { return a.events }

// Request enqueues container requests; the scheduler services them on its
// next heartbeat.
func (a *Application) Request(reqs ...*ContainerRequest) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return
	}
	a.pending = append(a.pending, reqs...)
}

// Cancel withdraws a pending request. Cancelling an already-satisfied or
// unknown request is a no-op.
func (a *Application) Cancel(req *ContainerRequest) {
	a.mu.Lock()
	defer a.mu.Unlock()
	req.cancelled = true
}

// PendingRequests returns the number of outstanding container requests.
func (a *Application) PendingRequests() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, r := range a.pending {
		if !r.cancelled {
			n++
		}
	}
	return n
}

// Allocated returns the application's currently held resources.
func (a *Application) Allocated() Resource {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocated
}

// HeldContainers returns the number of containers currently held.
func (a *Application) HeldContainers() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.containers)
}

// Release returns a container to the cluster. The container's work, if
// any, is killed.
func (a *Application) Release(c *Container) {
	a.rm.stopContainer(c, StopReleased, false)
}

// Unregister releases everything the application holds and stops event
// delivery. Call exactly once when the AM exits.
func (a *Application) Unregister() {
	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		return
	}
	a.finished = true
	a.pending = nil
	var held []*Container
	for _, c := range a.containers {
		held = append(held, c)
	}
	a.mu.Unlock()
	for _, c := range held {
		a.rm.stopContainer(c, StopReleased, false)
	}
	a.events.Close()
	a.rm.removeApp(a.ID)
}

// removeContainerLocked detaches a container from the app's accounting.
func (a *Application) removeContainer(c *Container) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.containers[c.ID]; ok {
		delete(a.containers, c.ID)
		a.allocated = a.allocated.Sub(c.Resource)
	}
}
