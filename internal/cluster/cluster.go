// Package cluster implements an in-process resource management layer with
// the semantics of Hadoop YARN that Apache Tez depends on (§4 of the paper):
// container allocation with node/rack/any locality and delay scheduling,
// fair sharing across concurrently running applications, preemption of
// over-share applications, container launch overheads (so that container
// reuse is measurably profitable), and node failure/decommission
// notifications delivered to application masters.
//
// The repro note for this paper says "no YARN bindings; must mock resource
// manager layer" — this package is that substitution. Containers are real
// goroutine-hosted execution slots: applications launch work inside them and
// the work actually runs, but launch/warm-up overheads and capacities are
// explicit, configurable simulation parameters.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"tez/internal/chaos"
	"tez/internal/timeline"
)

// Resource is a multi-dimensional resource vector, like YARN's
// memory+vcores model.
type Resource struct {
	MemoryMB int
	VCores   int
}

// Add returns r + o.
func (r Resource) Add(o Resource) Resource {
	return Resource{r.MemoryMB + o.MemoryMB, r.VCores + o.VCores}
}

// Sub returns r - o.
func (r Resource) Sub(o Resource) Resource {
	return Resource{r.MemoryMB - o.MemoryMB, r.VCores - o.VCores}
}

// FitsIn reports whether r fits within capacity c.
func (r Resource) FitsIn(c Resource) bool {
	return r.MemoryMB <= c.MemoryMB && r.VCores <= c.VCores
}

// IsZero reports whether r is the zero resource.
func (r Resource) IsZero() bool { return r.MemoryMB == 0 && r.VCores == 0 }

func (r Resource) String() string {
	return fmt.Sprintf("<mem:%dMB, vcores:%d>", r.MemoryMB, r.VCores)
}

// Locality describes how well an allocation matched the request's
// preference.
type Locality int

const (
	// LocalityNode means the container is on a preferred node.
	LocalityNode Locality = iota
	// LocalityRack means the container is on a preferred rack.
	LocalityRack
	// LocalityAny means the container is anywhere ("off-switch").
	LocalityAny
)

func (l Locality) String() string {
	switch l {
	case LocalityNode:
		return "NODE_LOCAL"
	case LocalityRack:
		return "RACK_LOCAL"
	default:
		return "OFF_SWITCH"
	}
}

// Config parameterises the simulated cluster.
type Config struct {
	// Nodes is the number of nodes; NodesPerRack groups them into racks.
	Nodes        int
	NodesPerRack int
	// NodeResource is the capacity of each node.
	NodeResource Resource
	// ContainerLaunchOverhead is charged once when a container process is
	// launched (YARN container localisation + process start).
	ContainerLaunchOverhead time.Duration
	// WarmupPenalty is charged for the first execution in a fresh
	// container (the JVM JIT warm-up the paper credits container reuse
	// with avoiding).
	WarmupPenalty time.Duration
	// ScheduleInterval is the allocation heartbeat period.
	ScheduleInterval time.Duration
	// NodeLocalityDelay / RackLocalityDelay are the number of missed
	// scheduling opportunities before a request's locality constraint is
	// relaxed node→rack and rack→any (delay scheduling, Zaharia et al.).
	NodeLocalityDelay int
	RackLocalityDelay int
	// DisableDelayScheduling turns off the wait-before-relax behaviour;
	// requests then allocate anywhere immediately (ablation knob).
	DisableDelayScheduling bool
	// FairPreemption enables preemption of containers from tenant groups
	// above their instantaneous weighted fair share when another group is
	// starved. PreemptionInterval is how often the check runs;
	// PreemptionStarvation is how long a group must remain starved before
	// containers are actually killed for it (0 = immediately).
	FairPreemption       bool
	PreemptionInterval   time.Duration
	PreemptionStarvation time.Duration
	// Chaos, when set, injects faults into container launch and execution
	// (nil means no injection).
	Chaos *chaos.Plane
	// Timeline, when set, receives allocation, container-stop and node
	// events (nil records nothing).
	Timeline *timeline.Journal
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.NodesPerRack <= 0 {
		c.NodesPerRack = 8
	}
	if c.NodeResource.IsZero() {
		c.NodeResource = Resource{MemoryMB: 8192, VCores: 8}
	}
	if c.ScheduleInterval <= 0 {
		c.ScheduleInterval = 500 * time.Microsecond
	}
	if c.NodeLocalityDelay <= 0 {
		c.NodeLocalityDelay = 2
	}
	if c.RackLocalityDelay <= 0 {
		c.RackLocalityDelay = 2
	}
	if c.PreemptionInterval <= 0 {
		c.PreemptionInterval = 5 * time.Millisecond
	}
	return c
}

// NodeID identifies a cluster node.
type NodeID string

// ContainerID identifies a container.
type ContainerID int64

// AppID identifies an application.
type AppID int64

// Node is a simulated cluster machine.
type Node struct {
	ID   NodeID
	Rack string

	mu         sync.Mutex
	capacity   Resource
	used       Resource
	live       bool
	containers map[ContainerID]*Container

	// Scheduler state, guarded by rm.mu (see shards.go): a mirror of the
	// free capacity plus the node's position in its rack shard, so
	// placement never takes n.mu. shard is nil while the node is down.
	schedAvail Resource
	shard      *rackShard
	shardIdx   int
}

// Available returns the node's free capacity.
func (n *Node) Available() Resource {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.capacity.Sub(n.used)
}

// Live reports whether the node is up.
func (n *Node) Live() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.live
}
