package library

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"

	"tez/internal/event"
	"tez/internal/metrics"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
	"tez/internal/timeline"
)

func init() {
	// Integer-sum combiner used throughout the sort/spill tests. Summing
	// is associative, so combining per spill then again at the merge
	// yields the same bytes as combining once over everything.
	RegisterCombineFunc("test.sum", func(key []byte, values [][]byte, out runtime.KVWriter) error {
		sum := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			sum += n
		}
		return out.Write(key, []byte(strconv.Itoa(sum)))
	})
}

// produceCfg runs one ordered producer with the given payload config and
// services, writing via the supplied function, and returns the emitted
// events plus the registered output id.
func produceCfg(t *testing.T, svc runtime.Services, cfg *OrderedPartitionedConfig, task, parts int, write func(w runtime.KVWriter)) ([]event.Event, shuffle.OutputID) {
	t.Helper()
	var payload []byte
	if cfg != nil {
		payload = plugin.MustEncode(*cfg)
	}
	out := &OrderedPartitionedKVOutput{}
	meta := runtime.Meta{DAG: "d", Vertex: "map", Task: task, Attempt: 0}
	if err := out.Initialize(ctxFor(svc, meta, "red", payload, parts)); err != nil {
		t.Fatal(err)
	}
	wAny, err := out.Writer()
	if err != nil {
		t.Fatal(err)
	}
	write(wAny.(runtime.KVWriter))
	events, err := out.Close()
	if err != nil {
		t.Fatal(err)
	}
	id := shuffle.OutputID{DAG: "d", Vertex: "map", Name: "red", Task: task, Attempt: 0}
	return events, id
}

func writeWordRecords(n int) func(w runtime.KVWriter) {
	return func(w runtime.KVWriter) {
		for i := 0; i < n; i++ {
			k := []byte(fmt.Sprintf("word-%03d", i%97))
			if err := w.Write(k, []byte("1")); err != nil {
				panic(err)
			}
		}
	}
}

// TestSpillOutputByteIdentical is the spill-path acceptance test: a
// SortBytes-constrained run must spill more than once, the combiner must
// shrink the spilled data, and the registered partitions must equal the
// unconstrained run's byte for byte.
func TestSpillOutputByteIdentical(t *testing.T) {
	const parts, records = 3, 5000
	for _, combiner := range []string{"", "test.sum"} {
		t.Run("combiner="+combiner, func(t *testing.T) {
			fetch := func(task int, cfg *OrderedPartitionedConfig, ctr *metrics.Counters) [][]byte {
				svc := testServices(t)
				svc.Counters = ctr
				_, id := produceCfg(t, svc, cfg, task, parts, writeWordRecords(records))
				got := make([][]byte, parts)
				for p := 0; p < parts; p++ {
					data, err := svc.Shuffle.Fetch(id, p, "n0")
					if err != nil {
						t.Fatal(err)
					}
					got[p] = data
				}
				return got
			}
			ctr := metrics.NewCounters()
			constrained := fetch(0, &OrderedPartitionedConfig{SortBytes: 4096, Combiner: combiner}, ctr)
			unconstrained := fetch(0, &OrderedPartitionedConfig{Combiner: combiner}, nil)
			if spills := ctr.Get("SHUFFLE_SPILLS"); spills <= 1 {
				t.Fatalf("SHUFFLE_SPILLS = %d, want > 1", spills)
			}
			if ctr.Get("SHUFFLE_SORT_TIME_NS") <= 0 || ctr.Get("SHUFFLE_MERGE_TIME_NS") <= 0 {
				t.Fatalf("sort/merge time counters missing: %v", ctr)
			}
			if combiner != "" {
				in, out := ctr.Get("COMBINE_INPUT_RECORDS"), ctr.Get("COMBINE_OUTPUT_RECORDS")
				if in == 0 || out == 0 || out >= in {
					t.Fatalf("combiner did not reduce records: in=%d out=%d", in, out)
				}
			}
			for p := range constrained {
				if !bytes.Equal(constrained[p], unconstrained[p]) {
					t.Fatalf("partition %d differs: spilled %d bytes vs %d", p, len(constrained[p]), len(unconstrained[p]))
				}
			}
		})
	}
}

// consumeGrouped routes the producers' partition-p movements into a
// grouped input and drains it into a key->joined-values map.
func consumeGrouped(t *testing.T, svc runtime.Services, events []event.Event, partition, srcTasks int) map[string]string {
	t.Helper()
	in := &OrderedGroupedKVInput{}
	meta := runtime.Meta{DAG: "d", Vertex: "red", Task: partition, Attempt: 0}
	ctx := ctxFor(svc, meta, "map", nil, srcTasks)
	if err := in.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { in.Close() })
	for _, ev := range events {
		dm, ok := ev.(event.DataMovement)
		if !ok || dm.SrcOutputIndex != partition {
			continue
		}
		dm.TargetVertex = "red"
		dm.TargetTask = partition
		dm.TargetInput = "map"
		dm.TargetInputIndex = dm.SrcTask
		if err := in.HandleEvent(dm); err != nil {
			t.Fatal(err)
		}
	}
	rAny, err := in.Reader()
	if err != nil {
		t.Fatal(err)
	}
	g := rAny.(runtime.GroupedKVReader)
	got := map[string]string{}
	for g.Next() {
		var buf bytes.Buffer
		for _, v := range g.Values() {
			buf.Write(v)
			buf.WriteByte(',')
		}
		got[string(g.Key())] = buf.String()
	}
	if g.Err() != nil {
		t.Fatal(g.Err())
	}
	return got
}

// TestFlateCodecRoundTrip checks that flate-compressed partitions decode
// byte-identically through Register→Fetch→merge and that the wire/raw
// counters show the compression.
func TestFlateCodecRoundTrip(t *testing.T) {
	const srcTasks, parts, records = 3, 2, 2000
	run := func(codec string) (map[string]string, *metrics.Counters) {
		svc := testServices(t)
		ctr := metrics.NewCounters()
		svc.Counters = ctr
		var all []event.Event
		for s := 0; s < srcTasks; s++ {
			evs, _ := produceCfg(t, svc, &OrderedPartitionedConfig{Codec: codec}, s, parts, writeWordRecords(records))
			all = append(all, evs...)
		}
		return consumeGrouped(t, svc, all, 0, srcTasks), ctr
	}
	plain, plainCtr := run("")
	flated, flateCtr := run("flate")
	if len(plain) == 0 {
		t.Fatal("no groups read")
	}
	for k, v := range plain {
		if flated[k] != v {
			t.Fatalf("group %q differs under flate: %q vs %q", k, flated[k], v)
		}
	}
	if len(flated) != len(plain) {
		t.Fatalf("group count differs: %d vs %d", len(flated), len(plain))
	}
	wire, raw := flateCtr.Get("SHUFFLE_BYTES_WIRE"), flateCtr.Get("SHUFFLE_BYTES_RAW")
	if wire <= 0 || raw <= 0 || wire >= raw {
		t.Fatalf("flate wire/raw = %d/%d, want 0 < wire < raw", wire, raw)
	}
	if w, r := plainCtr.Get("SHUFFLE_BYTES_WIRE"), plainCtr.Get("SHUFFLE_BYTES_RAW"); w != r {
		t.Fatalf("codec none: wire %d != raw %d", w, r)
	}
}

// TestCodecKnobResolution checks the payload → Services → shuffle.Config
// fallback chain for the codec, sort-budget and merge-factor knobs.
func TestCodecKnobResolution(t *testing.T) {
	svc := testServices(t)
	mk := func(svc runtime.Services, payload []byte) *OrderedPartitionedKVOutput {
		o := &OrderedPartitionedKVOutput{}
		meta := runtime.Meta{DAG: "d", Vertex: "map", Task: 0, Attempt: 0}
		if err := o.Initialize(ctxFor(svc, meta, "red", payload, 2)); err != nil {
			t.Fatal(err)
		}
		return o
	}
	if o := mk(svc, nil); o.codec != nil || o.limit != 0 {
		t.Fatalf("defaults: codec=%v limit=%d", o.codec, o.limit)
	}
	svc2 := svc
	svc2.Codec = "flate"
	svc2.SortMB = 2
	if o := mk(svc2, nil); o.codec == nil || o.codec.Name() != "flate" || o.limit != 2<<20 {
		t.Fatalf("services knobs not honoured: codec=%v limit=%d", o.codec, o.limit)
	}
	// Payload overrides Services.
	payload := plugin.MustEncode(OrderedPartitionedConfig{Codec: "none", SortBytes: -1})
	if o := mk(svc2, payload); o.codec != nil || o.limit != 0 {
		t.Fatalf("payload override lost: codec=%v limit=%d", o.codec, o.limit)
	}
	// Cluster-wide shuffle.Config defaults.
	sh := shuffle.New(shuffle.Config{Codec: "flate", SortMB: 1, MergeFactor: 7})
	sh.AddNode("n0", "r0")
	svc3 := svc
	svc3.Shuffle = sh
	if o := mk(svc3, nil); o.codec == nil || o.limit != 1<<20 {
		t.Fatalf("shuffle.Config knobs not honoured: codec=%v limit=%d", o.codec, o.limit)
	}
	fs := newFetchSet(ctxFor(svc3, runtime.Meta{}, "map", nil, 1))
	if got := fs.mergeFactor(); got != 7 {
		t.Fatalf("mergeFactor = %d, want 7", got)
	}
	svc3.MergeFactor = -1
	fs = newFetchSet(ctxFor(svc3, runtime.Meta{}, "map", nil, 1))
	if got := fs.mergeFactor(); got != 0 {
		t.Fatalf("mergeFactor = %d, want 0 (disabled)", got)
	}
	if err := func() error {
		o := &OrderedPartitionedKVOutput{}
		meta := runtime.Meta{DAG: "d", Vertex: "map", Task: 0, Attempt: 0}
		return o.Initialize(ctxFor(svc, meta, "red", plugin.MustEncode(OrderedPartitionedConfig{Codec: "bogus"}), 2))
	}(); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestMergeFactorBoundsAndOverlap runs many producers through a consumer
// with a tiny merge factor: intermediate merges must happen (journalled
// as ShuffleMerge spans, charged to SHUFFLE_MERGE_TIME_NS) and the
// grouped output must equal the unbounded-merge run.
func TestMergeFactorBoundsAndOverlap(t *testing.T) {
	const srcTasks, parts = 9, 1
	run := func(factor int) (map[string]string, *metrics.Counters, *timeline.Journal) {
		svc := testServices(t)
		ctr := metrics.NewCounters()
		tl := timeline.New()
		svc.Counters = ctr
		svc.Timeline = tl
		svc.MergeFactor = factor
		var all []event.Event
		for s := 0; s < srcTasks; s++ {
			evs, _ := produceCfg(t, svc, nil, s, parts, func(w runtime.KVWriter) {
				for i := 0; i < 50; i++ {
					if err := w.Write([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d-%d", s, i))); err != nil {
						t.Fatal(err)
					}
				}
			})
			all = append(all, evs...)
		}
		return consumeGrouped(t, svc, all, 0, srcTasks), ctr, tl
	}
	bounded, ctr, tl := run(2)
	unbounded, _, _ := run(-1)
	if len(bounded) == 0 {
		t.Fatal("no groups read")
	}
	for k, v := range unbounded {
		if bounded[k] != v {
			t.Fatalf("group %q differs under merge factor 2: %q vs %q", k, bounded[k], v)
		}
	}
	if ctr.Get("SHUFFLE_MERGE_TIME_NS") <= 0 {
		t.Fatalf("no merge time charged: %v", ctr)
	}
	merges := 0
	for _, e := range tl.Events() {
		if e.Type == timeline.ShuffleMerge {
			merges++
		}
	}
	if merges == 0 {
		t.Fatal("no ShuffleMerge spans journalled")
	}
}

// TestRetractionAfterMergeFails: once a run has been folded into an
// intermediate merge it cannot be retracted; an InputFailed for it must
// surface as an InputReadError so the whole attempt re-runs.
func TestRetractionAfterMergeFails(t *testing.T) {
	svc := testServices(t)
	fs := newFetchSet(ctxFor(svc, runtime.Meta{DAG: "d", Vertex: "red"}, "map", nil, 4))
	fs.mu.Lock()
	for i := 0; i < 2; i++ {
		fs.states[i] = &inputState{
			attempt: 0, srcTask: i, total: 1,
			stored: map[int][]byte{0: AppendRecord(nil, []byte("k"), []byte("v"))},
			merged: map[int]bool{},
		}
		fs.expect[i] = 0
	}
	batch := fs.takeMergeBatchLocked(2)
	fs.mu.Unlock()
	if len(batch) != 2 {
		t.Fatalf("batch = %d runs", len(batch))
	}
	// Retracting an unmerged (or unknown) index is still fine...
	if err := fs.handleEvent(event.InputFailed{TargetInputIndex: 3, SrcAttempt: 0}); err != nil {
		t.Fatal(err)
	}
	if fs.failure != nil {
		t.Fatal("spurious failure")
	}
	// ...retracting a merged one is not.
	if err := fs.handleEvent(event.InputFailed{TargetInputIndex: 1, SrcAttempt: 0}); err != nil {
		t.Fatal(err)
	}
	if fs.failure == nil {
		t.Fatal("retraction of merged input not surfaced")
	}
}

// buildGroupedRuns encodes srcRuns sorted runs of the same key space, as
// the reduce side would fetch them.
func buildGroupedRuns(runs, keys, valsPerKey int) [][]byte {
	out := make([][]byte, runs)
	for r := 0; r < runs; r++ {
		var buf []byte
		for k := 0; k < keys; k++ {
			key := []byte(fmt.Sprintf("key-%05d", k))
			for v := 0; v < valsPerKey; v++ {
				buf = AppendRecord(buf, key, []byte(fmt.Sprintf("val-%d-%d", r, v)))
			}
		}
		out[r] = buf
	}
	return out
}

// TestGroupedReadAllocs is the regression for the per-value copy bug:
// reading a merged, grouped stream must cost at most one allocation per
// record (amortised; the heap fix path and container growth dominate).
func TestGroupedReadAllocs(t *testing.T) {
	runs := buildGroupedRuns(4, 200, 3)
	var total int
	allocs := testing.AllocsPerRun(5, func() {
		g := newGroupedReader(newMergeReader(runs))
		n := 0
		for g.Next() {
			n += len(g.Values())
		}
		if g.Err() != nil {
			t.Fatal(g.Err())
		}
		total = n
	})
	if total != 4*200*3 {
		t.Fatalf("read %d records", total)
	}
	if perRecord := allocs / float64(total); perRecord > 1 {
		t.Fatalf("allocs/record = %.2f (total %.0f), want <= 1", perRecord, allocs)
	}
}

// BenchmarkGroupedRead measures the zero-copy grouped read path.
func BenchmarkGroupedRead(b *testing.B) {
	const runs, keys, valsPerKey = 8, 2000, 4
	data := buildGroupedRuns(runs, keys, valsPerKey)
	records := runs * keys * valsPerKey
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := newGroupedReader(newMergeReader(data))
		n := 0
		for g.Next() {
			n += len(g.Values())
		}
		if n != records {
			b.Fatalf("read %d of %d records", n, records)
		}
	}
}
