package library

import (
	"fmt"
	"sync"

	"tez/internal/dfs"
	"tez/internal/event"
	"tez/internal/plugin"
	"tez/internal/runtime"
)

// Registered names of the DFS-backed root input, sink output, committer
// and split initializer.
const (
	DFSSourceInputName   = "tez.dfs_source_input"
	DFSSinkOutputName    = "tez.dfs_sink_output"
	DFSCommitterName     = "tez.dfs_committer"
	SplitInitializerName = "tez.split_initializer"
)

func init() {
	runtime.RegisterInput(DFSSourceInputName, func() runtime.Input { return &DFSSourceInput{} })
	runtime.RegisterOutput(DFSSinkOutputName, func() runtime.Output { return &DFSSinkOutput{} })
	runtime.RegisterCommitter(DFSCommitterName, func() runtime.Committer { return &DFSCommitter{} })
	runtime.RegisterInitializer(SplitInitializerName, func() runtime.Initializer { return &SplitInitializer{} })
}

// RecordFileWriter writes KV records to a DFS file, padding so that no
// record straddles a block boundary: every byte-range split aligned to
// blocks is then a self-contained record stream.
type RecordFileWriter struct {
	w         *dfs.Writer
	blockSize int64
	inBlock   int64
	records   int64
}

// CreateRecordFile opens a record file for writing near localNode. The
// padding block size is the filesystem's block size: the invariant that a
// record never straddles a block (and therefore never straddles a
// block-aligned split) only holds when the two agree.
func CreateRecordFile(fs *dfs.FileSystem, path, localNode string) (*RecordFileWriter, error) {
	blockSize := fs.BlockSize()
	w, err := fs.Create(path, localNode)
	if err != nil {
		return nil, err
	}
	return &RecordFileWriter{w: w, blockSize: blockSize}, nil
}

// Write appends one record. Records larger than a block are rejected.
func (w *RecordFileWriter) Write(key, value []byte) error {
	sz := int64(RecordSize(key, value))
	if sz > w.blockSize {
		return fmt.Errorf("library: record of %d bytes exceeds block size %d", sz, w.blockSize)
	}
	if w.inBlock+sz > w.blockSize {
		// Pad the rest of the block; readers stop at the 0x00 marker.
		pad := make([]byte, w.blockSize-w.inBlock)
		if _, err := w.w.Write(pad); err != nil {
			return err
		}
		w.inBlock = 0
	}
	buf := AppendRecord(nil, key, value)
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	w.inBlock += sz
	w.records++
	return nil
}

// Records returns how many records were written.
func (w *RecordFileWriter) Records() int64 { return w.records }

// Close finalises the file.
func (w *RecordFileWriter) Close() error { return w.w.Close() }

// SplitAssignment is the RootInputDataInformation payload produced by
// SplitInitializer: the shards a particular task must read.
type SplitAssignment struct {
	Splits []dfs.Split
}

// splitRecordReader streams records from a task's assigned splits,
// reading each split's bytes from the DFS (charging locality-dependent
// read cost). It implements runtime.KVReader.
type splitRecordReader struct {
	fs     *dfs.FileSystem
	node   string
	splits []dfs.Split
	idx    int
	cur    *BufferReader
	err    error
}

// Next advances across split boundaries.
func (r *splitRecordReader) Next() bool {
	for {
		if r.err != nil {
			return false
		}
		if r.cur == nil {
			if r.idx >= len(r.splits) {
				return false
			}
			s := r.splits[r.idx]
			r.idx++
			data, err := r.fs.ReadAt(s.Path, r.node, s.Offset, s.Length)
			if err != nil {
				r.err = err
				return false
			}
			r.cur = multiBlockReader{data: data}.reader()
		}
		if r.cur.Next() {
			return true
		}
		if err := r.cur.Err(); err != nil {
			r.err = err
			return false
		}
		r.cur = nil
	}
}

func (r *splitRecordReader) Key() []byte   { return r.cur.Key() }
func (r *splitRecordReader) Value() []byte { return r.cur.Value() }
func (r *splitRecordReader) Err() error    { return r.err }

// multiBlockReader handles padded blocks inside a split: a BufferReader
// stops at padding, so we must skip to the next block boundary. For
// simplicity splits carry whole blocks and block size is recovered from
// the padding itself: we scan past zero bytes to the next record.
type multiBlockReader struct{ data []byte }

func (m multiBlockReader) reader() *BufferReader {
	return NewPaddedReader(m.data)
}

// DFSSourceInput is the root input of a vertex reading a DFS data source.
// Its split assignment arrives from the initializer as a
// RootInputDataInformation event; Reader blocks until it does.
type DFSSourceInput struct {
	ctx    *runtime.Context
	mu     sync.Mutex
	cond   *sync.Cond
	splits []dfs.Split
	have   bool
}

// Initialize stores the context.
func (in *DFSSourceInput) Initialize(ctx *runtime.Context) error {
	in.ctx = ctx
	in.cond = sync.NewCond(&in.mu)
	return nil
}

// HandleEvent accepts the split assignment.
func (in *DFSSourceInput) HandleEvent(ev event.Event) error {
	ri, ok := ev.(event.RootInputDataInformation)
	if !ok {
		return nil
	}
	var asn SplitAssignment
	if err := plugin.Decode(ri.Payload, &asn); err != nil {
		return err
	}
	in.mu.Lock()
	in.splits = asn.Splits
	in.have = true
	in.mu.Unlock()
	in.cond.Broadcast()
	return nil
}

// Start arms a kill-watcher so Reader never blocks past attempt death.
func (in *DFSSourceInput) Start() error {
	go func() {
		<-in.ctx.Stop
		in.cond.Broadcast()
	}()
	return nil
}

// Reader blocks for the split assignment, then streams its records.
func (in *DFSSourceInput) Reader() (any, error) {
	in.mu.Lock()
	for !in.have {
		select {
		case <-in.ctx.Stop:
			in.mu.Unlock()
			return nil, fmt.Errorf("library: %s: killed before split assignment", in.ctx.Name)
		default:
		}
		in.cond.Wait()
	}
	splits := in.splits
	in.mu.Unlock()
	return &splitRecordReader{
		fs:     in.ctx.Services.FS,
		node:   in.ctx.Services.Node,
		splits: splits,
	}, nil
}

// Close is a no-op.
func (in *DFSSourceInput) Close() error { return nil }

// DFSSinkConfig configures DFSSinkOutput and DFSCommitter with the final
// output directory.
type DFSSinkConfig struct {
	Path string
}

// DFSSinkOutput writes a task's final output to an attempt-unique
// temporary file under the sink directory; the DFSCommitter later makes
// exactly one attempt per task visible.
type DFSSinkOutput struct {
	ctx *runtime.Context
	cfg DFSSinkConfig
	buf []byte
}

// TempPath returns the attempt's temporary file name under a sink path.
func TempPath(path string, task, attempt int) string {
	return fmt.Sprintf("%s/.tmp/t%05d_a%d", path, task, attempt)
}

// FinalPath returns the committed file name of a task under a sink path.
func FinalPath(path string, task int) string {
	return fmt.Sprintf("%s/part-%05d", path, task)
}

// Initialize decodes the sink path.
func (o *DFSSinkOutput) Initialize(ctx *runtime.Context) error {
	o.ctx = ctx
	if err := plugin.Decode(ctx.Payload, &o.cfg); err != nil {
		return err
	}
	if o.cfg.Path == "" {
		return fmt.Errorf("library: dfs sink without path")
	}
	return nil
}

// Writer returns a runtime.KVWriter buffering records.
func (o *DFSSinkOutput) Writer() (any, error) {
	return kvWriterFunc(func(k, v []byte) error {
		o.buf = AppendRecord(o.buf, k, v)
		return nil
	}), nil
}

// Close writes the attempt's temporary file (side-effect free with respect
// to the final output: only the committer publishes). The file is written
// in the block-aligned record format so that committed output can itself
// be split and re-read as a data source (the MR chain does exactly that).
func (o *DFSSinkOutput) Close() ([]event.Event, error) {
	p := TempPath(o.cfg.Path, o.ctx.Meta.Task, o.ctx.Meta.Attempt)
	w, err := CreateRecordFile(o.ctx.Services.FS, p, o.ctx.Services.Node)
	if err != nil {
		return nil, err
	}
	r := NewBufferReader(o.buf)
	for r.Next() {
		if err := w.Write(r.Key(), r.Value()); err != nil {
			return nil, err
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, w.Close()
}

// DFSCommitter publishes one successful attempt per task by renaming its
// temporary file to the final part file, then removes leftovers. Commit is
// idempotent per the once-only guarantee the AM provides.
type DFSCommitter struct{}

// Commit implements runtime.Committer.
func (DFSCommitter) Commit(ctx *runtime.CommitContext) error {
	var cfg DFSSinkConfig
	if err := plugin.Decode(ctx.Payload, &cfg); err != nil {
		return err
	}
	for task := 0; task < ctx.Parallelism; task++ {
		attempt, ok := ctx.SuccessfulAttempt[task]
		if !ok {
			return fmt.Errorf("library: commit %s: no successful attempt for task %d", cfg.Path, task)
		}
		from := TempPath(cfg.Path, task, attempt)
		to := FinalPath(cfg.Path, task)
		if err := ctx.FS.Rename(from, to); err != nil {
			// Idempotence across AM recovery: a previous AM may already
			// have published this task's output.
			if ctx.FS.Exists(to) && !ctx.FS.Exists(from) {
				continue
			}
			return fmt.Errorf("library: commit %s task %d: %w", cfg.Path, task, err)
		}
	}
	ctx.FS.DeletePrefix(cfg.Path + "/.tmp/")
	return nil
}

// SplitSourceConfig configures SplitInitializer.
type SplitSourceConfig struct {
	// Paths to read. All splits are concatenated.
	Paths []string
	// DesiredSplitSize in bytes (0: one block per split).
	DesiredSplitSize int64
	// MaxParallelism caps the task count (0: unlimited).
	MaxParallelism int
}

// SplitInitializer is the built-in "split calculation" initializer (§3.5):
// it consults the DFS for data distribution and locality and produces one
// task per split (subject to MaxParallelism, in which case splits are
// round-robined across tasks) along with location hints.
type SplitInitializer struct{}

// Run computes the split assignment.
func (SplitInitializer) Run(ctx *runtime.InitializerContext) (*runtime.InitializerResult, error) {
	var cfg SplitSourceConfig
	if err := plugin.Decode(ctx.Payload, &cfg); err != nil {
		return nil, err
	}
	var all []dfs.Split
	for _, p := range cfg.Paths {
		splits, err := ctx.FS.Splits(p, cfg.DesiredSplitSize)
		if err != nil {
			return nil, err
		}
		all = append(all, splits...)
	}
	par := len(all)
	if par == 0 {
		par = 1
	}
	if cfg.MaxParallelism > 0 && par > cfg.MaxParallelism {
		par = cfg.MaxParallelism
	}
	perTask := make([][]dfs.Split, par)
	for i, s := range all {
		perTask[i%par] = append(perTask[i%par], s)
	}
	res := &runtime.InitializerResult{Parallelism: par}
	for _, splits := range perTask {
		res.PerTaskPayload = append(res.PerTaskPayload, plugin.MustEncode(SplitAssignment{Splits: splits}))
		var hints []string
		if len(splits) > 0 {
			hints = splits[0].Hosts
		}
		res.LocationHints = append(res.LocationHints, hints)
	}
	return res, nil
}
