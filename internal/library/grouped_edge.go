package library

import (
	"fmt"

	"tez/internal/dag"
	"tez/internal/plugin"
)

// GroupedShuffleEdgeManagerName is a custom EdgeManager (§3.1's pluggable
// connection pattern) that routes an arbitrary, runtime-decided set of
// partitions to each consumer task. It is the routing half of Hive's
// Dynamically Partitioned Hash Join (§5.2): "Hive uses a custom vertex
// manager to determine which subsets of data shards to join with each
// other and creates a custom edge that routes the appropriate shards to
// their consumer tasks." The grouping itself is computed by a
// VertexManager (see am.BucketGroupingVertexManager) from the partition
// sizes producers report, and installed by re-configuring this edge's
// payload before the consumers are scheduled.
const GroupedShuffleEdgeManagerName = "tez.grouped_shuffle_edge"

func init() {
	dag.RegisterEdgeManager(GroupedShuffleEdgeManagerName, func() dag.EdgeManager {
		return &GroupedShuffleEdgeManager{}
	})
}

// GroupedShuffleConfig assigns every physical partition to exactly one
// consumer task: consumer t reads partitions Groups[t] (in order) from
// every producer.
type GroupedShuffleConfig struct {
	Groups [][]int
}

// GroupedShuffleEdgeManager routes partition p of every source task to
// the consumer whose group contains p. Physical inputs at consumer t are
// laid out partition-major, like the built-in scatter-gather.
type GroupedShuffleEdgeManager struct {
	ctx    dag.EdgeContext
	groups [][]int
	// destOf[p] / slotOf[p]: owning consumer and position within group.
	destOf map[int]int
	slotOf map[int]int
}

// Initialize decodes the group assignment. An empty payload defaults to
// the identity assignment (partition p → consumer p), which makes the
// edge usable before a VertexManager re-configures it.
func (m *GroupedShuffleEdgeManager) Initialize(ctx dag.EdgeContext) error {
	m.ctx = ctx
	var cfg GroupedShuffleConfig
	if len(ctx.Payload) > 0 {
		if err := plugin.Decode(ctx.Payload, &cfg); err != nil {
			return err
		}
	}
	if len(cfg.Groups) == 0 {
		cfg.Groups = make([][]int, ctx.DestParallelism)
		for i := range cfg.Groups {
			cfg.Groups[i] = []int{i}
		}
	}
	if len(cfg.Groups) != ctx.DestParallelism {
		return fmt.Errorf("library: grouped edge with %d groups for %d consumers",
			len(cfg.Groups), ctx.DestParallelism)
	}
	parts := ctx.BasePartitions
	if parts <= 0 {
		parts = ctx.DestParallelism
	}
	m.groups = cfg.Groups
	m.destOf = make(map[int]int, parts)
	m.slotOf = make(map[int]int, parts)
	covered := 0
	for t, g := range cfg.Groups {
		for slot, p := range g {
			if p < 0 || p >= parts {
				return fmt.Errorf("library: grouped edge: partition %d out of %d", p, parts)
			}
			if _, dup := m.destOf[p]; dup {
				return fmt.Errorf("library: grouped edge: partition %d assigned twice", p)
			}
			m.destOf[p] = t
			m.slotOf[p] = slot
			covered++
		}
	}
	if covered != parts {
		return fmt.Errorf("library: grouped edge covers %d of %d partitions", covered, parts)
	}
	return nil
}

// NumSourceTaskPhysicalOutputs is the partition count.
func (m *GroupedShuffleEdgeManager) NumSourceTaskPhysicalOutputs(int) int {
	if m.ctx.BasePartitions > 0 {
		return m.ctx.BasePartitions
	}
	return m.ctx.DestParallelism
}

// NumDestinationTaskPhysicalInputs is |group| × source tasks.
func (m *GroupedShuffleEdgeManager) NumDestinationTaskPhysicalInputs(destTask int) int {
	return len(m.groups[destTask]) * m.ctx.SrcParallelism
}

// Route sends partition p of srcTask to its owning consumer.
func (m *GroupedShuffleEdgeManager) Route(srcTask, srcOutputIndex int) map[int]int {
	t := m.destOf[srcOutputIndex]
	slot := m.slotOf[srcOutputIndex]
	return map[int]int{t: slot*m.ctx.SrcParallelism + srcTask}
}

// SourceTaskOfInput inverts the partition-major layout.
func (m *GroupedShuffleEdgeManager) SourceTaskOfInput(_, inputIndex int) int {
	return inputIndex % m.ctx.SrcParallelism
}

// PackPartitions greedily groups partitions so every group's total size
// stays near targetBytes: the "which subsets of data shards to join with
// each other" decision of the dynamically partitioned hash join. Oversized
// partitions get a group of their own; partitions are kept in ascending
// order within a group (deterministic).
func PackPartitions(sizes []int64, targetBytes int64) [][]int {
	if targetBytes <= 0 {
		targetBytes = 1
	}
	var groups [][]int
	var cur []int
	var curBytes int64
	for p, sz := range sizes {
		if len(cur) > 0 && curBytes+sz > targetBytes {
			groups = append(groups, cur)
			cur, curBytes = nil, 0
		}
		cur = append(cur, p)
		curBytes += sz
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	if len(groups) == 0 {
		groups = [][]int{{}}
	}
	return groups
}
