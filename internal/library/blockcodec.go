package library

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Block codecs compress whole shuffle partitions before they are
// registered with the shuffle service and decompress them after they are
// fetched — the analog of IFile codecs in real Tez. The codec name rides
// in the DataMovement metadata (DMInfo.Codec), so the consumer needs no
// out-of-band negotiation: each fetched block is self-describing. The
// default "none" leaves the registered bytes exactly equal to the raw
// record stream, which is what the chaos-determinism golden relies on.

// BlockCodec compresses and decompresses whole shuffle blocks.
type BlockCodec interface {
	// Name is the registered codec name carried in DMInfo.Codec.
	Name() string
	// Encode appends the compressed form of src to dst and returns it.
	Encode(dst, src []byte) ([]byte, error)
	// Decode decompresses src; rawSize is the expected decoded length
	// (a capacity hint and an integrity check when >= 0).
	Decode(src []byte, rawSize int) ([]byte, error)
}

// DefaultBlockCodec is the codec used when no knob overrides it.
const DefaultBlockCodec = "none"

var (
	codecMu     sync.RWMutex
	blockCodecs = map[string]BlockCodec{}
)

// RegisterBlockCodec installs a codec under its Name. The built-ins are
// "none" (identity, the default) and "flate" (DEFLATE, stdlib).
func RegisterBlockCodec(c BlockCodec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	blockCodecs[c.Name()] = c
}

// ResolveBlockCodec looks a codec up by name. "" and "none" resolve to
// nil: the identity codec, meaning bytes cross the wire untouched.
func ResolveBlockCodec(name string) (BlockCodec, error) {
	if name == "" || name == DefaultBlockCodec {
		return nil, nil
	}
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := blockCodecs[name]
	if !ok {
		return nil, fmt.Errorf("library: unknown shuffle codec %q", name)
	}
	return c, nil
}

func init() {
	RegisterBlockCodec(flateCodec{})
}

// flateCodec is the built-in DEFLATE block codec. Writers and readers are
// pooled — a flate writer alone is tens of kilobytes of window state, far
// too much to allocate per partition on container-reused tasks.
type flateCodec struct{}

func (flateCodec) Name() string { return "flate" }

var flateWriterPool = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.DefaultCompression)
		return w
	},
}

var flateReaderPool = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)) },
}

func (flateCodec) Encode(dst, src []byte) ([]byte, error) {
	buf := bytes.NewBuffer(dst)
	w := flateWriterPool.Get().(*flate.Writer)
	w.Reset(buf)
	if _, err := w.Write(src); err != nil {
		flateWriterPool.Put(w)
		return nil, err
	}
	if err := w.Close(); err != nil {
		flateWriterPool.Put(w)
		return nil, err
	}
	flateWriterPool.Put(w)
	return buf.Bytes(), nil
}

func (flateCodec) Decode(src []byte, rawSize int) ([]byte, error) {
	r := flateReaderPool.Get().(io.ReadCloser)
	defer flateReaderPool.Put(r)
	if err := r.(flate.Resetter).Reset(bytes.NewReader(src), nil); err != nil {
		return nil, err
	}
	capHint := rawSize
	if capHint < 0 {
		capHint = 2 * len(src)
	}
	out := bytes.NewBuffer(make([]byte, 0, capHint))
	if _, err := io.Copy(out, r); err != nil {
		return nil, fmt.Errorf("library: flate block corrupt: %w", err)
	}
	if rawSize >= 0 && out.Len() != rawSize {
		return nil, fmt.Errorf("library: flate block decoded to %d bytes, want %d", out.Len(), rawSize)
	}
	return out.Bytes(), nil
}

// encodeBlock runs src through the named codec; with the identity codec
// it returns src unchanged (no copy).
func encodeBlock(codec BlockCodec, src []byte) ([]byte, error) {
	if codec == nil {
		return src, nil
	}
	return codec.Encode(make([]byte, 0, len(src)/2+64), src)
}

// decodeBlock reverses encodeBlock for a fetched block described by its
// DMInfo codec name.
func decodeBlock(name string, src []byte, rawSize int) ([]byte, error) {
	codec, err := ResolveBlockCodec(name)
	if err != nil {
		return nil, err
	}
	if codec == nil {
		return src, nil
	}
	return codec.Decode(src, rawSize)
}
