package library

import (
	"errors"
	"fmt"
	"testing"

	"tez/internal/dfs"
	"tez/internal/event"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

func testServices(t *testing.T) runtime.Services {
	t.Helper()
	fs := dfs.New(dfs.Config{BlockSize: 256, Replication: 2})
	sh := shuffle.New(shuffle.Config{})
	for i := 0; i < 3; i++ {
		n := fmt.Sprintf("n%d", i)
		fs.AddNode(n, "r0")
		sh.AddNode(n, "r0")
	}
	return runtime.Services{FS: fs, Shuffle: sh, Node: "n0", Registry: runtime.NewObjectRegistry()}
}

func ctxFor(svc runtime.Services, meta runtime.Meta, name string, payload []byte, phys int) *runtime.Context {
	return &runtime.Context{
		Meta:          meta,
		Services:      svc,
		Payload:       payload,
		Name:          name,
		PhysicalCount: phys,
		Emit:          func(event.Event) {},
		Stop:          make(chan struct{}),
	}
}

// runProducer runs an OrderedPartitionedKVOutput for one source task and
// returns its emitted events.
func runProducer(t *testing.T, svc runtime.Services, task, parts int, pairs map[string]string) []event.Event {
	t.Helper()
	out := &OrderedPartitionedKVOutput{}
	meta := runtime.Meta{DAG: "d", Vertex: "map", Task: task, Attempt: 0}
	if err := out.Initialize(ctxFor(svc, meta, "red", nil, parts)); err != nil {
		t.Fatal(err)
	}
	wAny, err := out.Writer()
	if err != nil {
		t.Fatal(err)
	}
	w := wAny.(runtime.KVWriter)
	for k, v := range pairs {
		if err := w.Write([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	events, err := out.Close()
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestOrderedShuffleEndToEnd(t *testing.T) {
	svc := testServices(t)
	const srcTasks, parts = 3, 2
	var all []event.Event
	for s := 0; s < srcTasks; s++ {
		all = append(all, runProducer(t, svc, s, parts, map[string]string{
			fmt.Sprintf("key-%d", s): "x",
			"shared":                 fmt.Sprintf("s%d", s),
		})...)
	}
	var dms []event.DataMovement
	stats := 0
	for _, ev := range all {
		switch e := ev.(type) {
		case event.DataMovement:
			dms = append(dms, e)
		case event.VertexManagerEvent:
			stats++
			var vs VMStats
			if err := plugin.Decode(e.Payload, &vs); err != nil {
				t.Fatal(err)
			}
			if len(vs.PartitionSizes) != parts {
				t.Fatalf("stats partitions = %d", len(vs.PartitionSizes))
			}
		}
	}
	if len(dms) != srcTasks*parts || stats != srcTasks {
		t.Fatalf("events: %d movements, %d stats", len(dms), stats)
	}

	// Consumer task reads partition p from every source: simulate routing
	// for dest task 0 (partition 0), input index = srcTask.
	in := &OrderedGroupedKVInput{}
	meta := runtime.Meta{DAG: "d", Vertex: "red", Task: 0, Attempt: 0}
	ctx := ctxFor(svc, meta, "map", nil, srcTasks)
	if err := in.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Start(); err != nil {
		t.Fatal(err)
	}
	for _, dm := range dms {
		if dm.SrcOutputIndex != 0 {
			continue
		}
		dm.TargetVertex = "red"
		dm.TargetTask = 0
		dm.TargetInput = "map"
		dm.TargetInputIndex = dm.SrcTask
		if err := in.HandleEvent(dm); err != nil {
			t.Fatal(err)
		}
	}
	rAny, err := in.Reader()
	if err != nil {
		t.Fatal(err)
	}
	g := rAny.(runtime.GroupedKVReader)
	groups := map[string]int{}
	var prev string
	for g.Next() {
		k := string(g.Key())
		if prev != "" && k < prev {
			t.Fatalf("keys out of order: %q after %q", k, prev)
		}
		prev = k
		groups[k] = len(g.Values())
	}
	if g.Err() != nil {
		t.Fatal(g.Err())
	}
	// "shared" hashes to some partition; whichever keys landed on
	// partition 0 must have all their values grouped.
	hp := HashPartitioner{}
	want := map[string]int{}
	for s := 0; s < srcTasks; s++ {
		for _, k := range []string{fmt.Sprintf("key-%d", s), "shared"} {
			if hp.Partition([]byte(k), parts) == 0 {
				want[k]++
			}
		}
	}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v, want keys %v", groups, want)
	}
	for k, n := range want {
		if groups[k] != n {
			t.Fatalf("group %q has %d values, want %d", k, groups[k], n)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupedInputReportsDataLoss(t *testing.T) {
	svc := testServices(t)
	in := &OrderedGroupedKVInput{}
	meta := runtime.Meta{DAG: "d", Vertex: "red", Task: 0}
	ctx := ctxFor(svc, meta, "map", nil, 1)
	if err := in.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Start(); err != nil {
		t.Fatal(err)
	}
	// DataMovement referencing an output that was never registered.
	dm := event.DataMovement{
		SrcVertex: "map", SrcTask: 2, SrcAttempt: 1,
		TargetInput: "map", TargetInputIndex: 0,
		Payload: plugin.MustEncode(DMInfo{
			ID: shuffle.OutputID{DAG: "d", Vertex: "map", Task: 2, Attempt: 1},
		}),
	}
	if err := in.HandleEvent(dm); err != nil {
		t.Fatal(err)
	}
	_, err := in.Reader()
	ire, ok := runtime.AsInputReadError(err)
	if !ok {
		t.Fatalf("err = %v, want InputReadError", err)
	}
	if ire.SrcVertex != "map" || ire.SrcTask != 2 || ire.SrcAttempt != 1 {
		t.Fatalf("producer info = %+v", ire)
	}
	if !errors.Is(err, shuffle.ErrDataLost) {
		t.Fatalf("cause = %v", err)
	}
	_ = in.Close()
}

func TestInputFailedRetractionThenReplacement(t *testing.T) {
	svc := testServices(t)
	// Register attempt 0 and attempt 1 outputs with different data.
	id0 := shuffle.OutputID{DAG: "d", Vertex: "map", Task: 0, Attempt: 0}
	id1 := shuffle.OutputID{DAG: "d", Vertex: "map", Task: 0, Attempt: 1}
	_ = svc.Shuffle.Register("n1", id0, [][]byte{encodePairs([]pair{{[]byte("old"), []byte("0")}})})
	_ = svc.Shuffle.Register("n2", id1, [][]byte{encodePairs([]pair{{[]byte("new"), []byte("1")}})})

	in := &UnorderedKVInput{}
	ctx := ctxFor(svc, runtime.Meta{DAG: "d", Vertex: "red"}, "map", nil, 1)
	if err := in.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	if err := in.Start(); err != nil {
		t.Fatal(err)
	}
	mk := func(id shuffle.OutputID, attempt int) event.DataMovement {
		return event.DataMovement{
			SrcVertex: "map", SrcTask: 0, SrcAttempt: attempt,
			TargetInput: "map", TargetInputIndex: 0,
			Payload: plugin.MustEncode(DMInfo{ID: id}),
		}
	}
	if err := in.HandleEvent(mk(id0, 0)); err != nil {
		t.Fatal(err)
	}
	// Wait for the first fetch to land, then retract and replace.
	r1, err := in.Reader()
	if err != nil {
		t.Fatal(err)
	}
	kv := r1.(runtime.KVReader)
	if !kv.Next() || string(kv.Key()) != "old" {
		t.Fatal("first read should see attempt 0 data")
	}
	if err := in.HandleEvent(event.InputFailed{TargetInputIndex: 0, SrcTask: 0, SrcAttempt: 0}); err != nil {
		t.Fatal(err)
	}
	if err := in.HandleEvent(mk(id1, 1)); err != nil {
		t.Fatal(err)
	}
	r2, err := in.Reader()
	if err != nil {
		t.Fatal(err)
	}
	kv2 := r2.(runtime.KVReader)
	if !kv2.Next() || string(kv2.Key()) != "new" {
		t.Fatalf("replacement not fetched; key=%q", kv2.Key())
	}
	_ = in.Close()
}

func TestRecordFileWriteSplitRead(t *testing.T) {
	svc := testServices(t)
	const blockSize = 256
	w, err := CreateRecordFile(svc.FS, "/data/t", "n0")
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := w.Write([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != n {
		t.Fatalf("Records = %d", w.Records())
	}
	splits, err := svc.FS.Splits("/data/t", blockSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 2 {
		t.Fatalf("expected multiple splits, got %d", len(splits))
	}
	// Read via splitRecordReader across all splits: every record, in order.
	r := &splitRecordReader{fs: svc.FS, node: "n0", splits: splits}
	i := 0
	for r.Next() {
		if string(r.Key()) != fmt.Sprintf("k%04d", i) {
			t.Fatalf("record %d key %q", i, r.Key())
		}
		i++
	}
	if r.Err() != nil || i != n {
		t.Fatalf("read %d records, err=%v", i, r.Err())
	}
}

func TestRecordFileRejectsHugeRecord(t *testing.T) {
	svc := testServices(t)
	w, err := CreateRecordFile(svc.FS, "/data/big", "n0")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(make([]byte, 10000), nil); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestDFSSinkAndCommitter(t *testing.T) {
	svc := testServices(t)
	sinkCfg := plugin.MustEncode(DFSSinkConfig{Path: "/out"})
	writeAttempt := func(task, attempt int, val string) {
		out := &DFSSinkOutput{}
		meta := runtime.Meta{DAG: "d", Vertex: "v", Task: task, Attempt: attempt}
		if err := out.Initialize(ctxFor(svc, meta, "sink", sinkCfg, 0)); err != nil {
			t.Fatal(err)
		}
		wAny, _ := out.Writer()
		_ = wAny.(runtime.KVWriter).Write([]byte("k"), []byte(val))
		if _, err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeAttempt(0, 0, "t0a0")
	writeAttempt(1, 0, "t1a0-failed")
	writeAttempt(1, 1, "t1a1")

	c := DFSCommitter{}
	err := c.Commit(&runtime.CommitContext{
		DAG: "d", Vertex: "v", Sink: "sink",
		Payload: sinkCfg, FS: svc.FS,
		Parallelism:       2,
		SuccessfulAttempt: map[int]int{0: 0, 1: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	files := svc.FS.List("/out/part-")
	if len(files) != 2 {
		t.Fatalf("committed files = %v", files)
	}
	data, err := svc.FS.ReadFile(FinalPath("/out", 1), "n0")
	if err != nil {
		t.Fatal(err)
	}
	r := NewBufferReader(data)
	if !r.Next() || string(r.Value()) != "t1a1" {
		t.Fatalf("committed wrong attempt: %q", r.Value())
	}
	if got := svc.FS.List("/out/.tmp/"); len(got) != 0 {
		t.Fatalf("temp files left: %v", got)
	}
}

func TestCommitterMissingAttemptFails(t *testing.T) {
	svc := testServices(t)
	c := DFSCommitter{}
	err := c.Commit(&runtime.CommitContext{
		Payload: plugin.MustEncode(DFSSinkConfig{Path: "/out"}), FS: svc.FS,
		Parallelism:       1,
		SuccessfulAttempt: map[int]int{},
	})
	if err == nil {
		t.Fatal("commit with missing attempt succeeded")
	}
}

func TestSplitInitializer(t *testing.T) {
	svc := testServices(t)
	w, err := CreateRecordFile(svc.FS, "/in/a", "n1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		_ = w.Write([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	_ = w.Close()

	init := SplitInitializer{}
	res, err := init.Run(&runtime.InitializerContext{
		DAG: "d", Vertex: "v", Source: "src",
		Payload: plugin.MustEncode(SplitSourceConfig{Paths: []string{"/in/a"}, DesiredSplitSize: 256}),
		FS:      svc.FS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parallelism < 2 {
		t.Fatalf("parallelism = %d", res.Parallelism)
	}
	if len(res.PerTaskPayload) != res.Parallelism || len(res.LocationHints) != res.Parallelism {
		t.Fatal("per-task payloads/hints size mismatch")
	}
	// Sum of split lengths must equal the file size.
	var total int64
	for _, p := range res.PerTaskPayload {
		var asn SplitAssignment
		if err := plugin.Decode(p, &asn); err != nil {
			t.Fatal(err)
		}
		for _, s := range asn.Splits {
			total += s.Length
		}
	}
	sz, _ := svc.FS.Size("/in/a")
	if total != sz {
		t.Fatalf("splits cover %d of %d bytes", total, sz)
	}

	// Cap parallelism.
	res2, err := init.Run(&runtime.InitializerContext{
		Payload: plugin.MustEncode(SplitSourceConfig{Paths: []string{"/in/a"}, DesiredSplitSize: 256, MaxParallelism: 2}),
		FS:      svc.FS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Parallelism != 2 {
		t.Fatalf("capped parallelism = %d", res2.Parallelism)
	}
}

func TestRangePartitionedOutputConfig(t *testing.T) {
	svc := testServices(t)
	cfg := plugin.MustEncode(OrderedPartitionedConfig{
		Partitioner: PartitionerSpec{Kind: "range", Points: [][]byte{[]byte("m")}},
		NoStats:     true,
	})
	out := &OrderedPartitionedKVOutput{}
	meta := runtime.Meta{DAG: "d", Vertex: "map", Task: 0}
	if err := out.Initialize(ctxFor(svc, meta, "red", cfg, 2)); err != nil {
		t.Fatal(err)
	}
	wAny, _ := out.Writer()
	w := wAny.(runtime.KVWriter)
	_ = w.Write([]byte("apple"), []byte("1"))
	_ = w.Write([]byte("zebra"), []byte("2"))
	events, err := out.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, ok := ev.(event.VertexManagerEvent); ok {
			t.Fatal("stats sent despite NoStats=true")
		}
	}
	id := shuffle.OutputID{DAG: "d", Vertex: "map", Name: "red", Task: 0}
	p0, _ := svc.Shuffle.Fetch(id, 0, "n0")
	p1, _ := svc.Shuffle.Fetch(id, 1, "n0")
	r0, r1 := NewBufferReader(p0), NewBufferReader(p1)
	if !r0.Next() || string(r0.Key()) != "apple" {
		t.Fatal("apple not in range partition 0")
	}
	if !r1.Next() || string(r1.Key()) != "zebra" {
		t.Fatal("zebra not in range partition 1")
	}
}
