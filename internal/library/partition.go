package library

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
)

// Partitioner maps a key to a partition in [0, n).
type Partitioner interface {
	Partition(key []byte, n int) int
}

// HashPartitioner is the default: FNV-1a of the key modulo n.
type HashPartitioner struct{}

// Partition hashes key into [0, n).
func (HashPartitioner) Partition(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write(key)
	return int(h.Sum32() % uint32(n))
}

// RangePartitioner routes keys by comparison against sorted split points —
// the partitioner behind sample-based global ordering (Pig ORDER BY, §5.3).
// Points must be sorted ascending; with p points it produces p+1 ranges.
type RangePartitioner struct {
	Points [][]byte
}

// Partition returns the index of the first point >= key, i.e. keys are
// routed to the range they fall in; partition i holds keys <= Points[i].
func (r *RangePartitioner) Partition(key []byte, n int) int {
	idx := sort.Search(len(r.Points), func(i int) bool {
		return bytes.Compare(key, r.Points[i]) <= 0
	})
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// PartitionerSpec selects and configures a partitioner in an output's
// payload.
type PartitionerSpec struct {
	// Kind is "hash" (default) or "range".
	Kind string
	// Points configures a range partitioner.
	Points [][]byte
}

// New builds the configured partitioner.
func (s PartitionerSpec) New() (Partitioner, error) {
	switch s.Kind {
	case "", "hash":
		return HashPartitioner{}, nil
	case "range":
		return &RangePartitioner{Points: s.Points}, nil
	default:
		return nil, fmt.Errorf("library: unknown partitioner %q", s.Kind)
	}
}

// SplitPoints derives p-1 evenly spaced split points from a sorted sample,
// yielding p balanced ranges (the histogram step of the Pig skew/order
// pipelines).
func SplitPoints(sortedSample [][]byte, p int) [][]byte {
	if p <= 1 || len(sortedSample) == 0 {
		return nil
	}
	points := make([][]byte, 0, p-1)
	for i := 1; i < p; i++ {
		idx := i * len(sortedSample) / p
		if idx >= len(sortedSample) {
			idx = len(sortedSample) - 1
		}
		points = append(points, append([]byte(nil), sortedSample[idx]...))
	}
	return points
}
