package library

import (
	"tez/internal/security"
	"tez/internal/shuffle"
)

// RegisterShuffleOutput publishes pre-partitioned buffers with the shuffle
// service on behalf of a transport that bypasses the ordered/unordered
// outputs (e.g. the sparklike engine's bucket writer). Keeping every
// registration inside this package gives the shuffle protocol one choke
// point — evolutions like spill-indexed pipelined ids stay invisible to
// engines — and `make lint` forbids direct Shuffle.Register calls
// elsewhere to keep it that way.
func RegisterShuffleOutput(svc *shuffle.Service, node string, id shuffle.OutputID, partitions [][]byte, tok ...security.Token) error {
	return svc.Register(node, id, partitions, tok...)
}
