package library

import (
	"fmt"

	"tez/internal/plugin"
	"tez/internal/runtime"
)

// Registered names of the built-in processors.
const (
	MapProcessorName    = "tez.map_processor"
	ReduceProcessorName = "tez.reduce_processor"
)

func init() {
	runtime.RegisterProcessor(MapProcessorName, func() runtime.Processor { return &MapProcessor{} })
	runtime.RegisterProcessor(ReduceProcessorName, func() runtime.Processor { return &ReduceProcessor{} })
}

// MapFunc is user map logic: one input record to any number of output
// pairs.
type MapFunc func(key, value []byte, out runtime.KVWriter) error

// ReduceFunc is user reduce logic: one grouped key to any number of output
// pairs.
type ReduceFunc func(key []byte, values [][]byte, out runtime.KVWriter) error

var (
	mapFuncs    = map[string]MapFunc{}
	reduceFuncs = map[string]ReduceFunc{}
)

// RegisterMapFunc and RegisterReduceFunc install named user functions —
// the Go substitute for shipping user classes in the processor payload.
func RegisterMapFunc(name string, f MapFunc) { mapFuncs[name] = f }

// RegisterReduceFunc installs a named reduce function.
func RegisterReduceFunc(name string, f ReduceFunc) { reduceFuncs[name] = f }

// FuncConfig is the payload of the map/reduce processors: the registered
// function to host.
type FuncConfig struct {
	Func string
}

// MapProcessor is the built-in map-side processor (§5.1): it streams every
// input's KVReader through the configured MapFunc into every output.
type MapProcessor struct {
	ctx *runtime.Context
	fn  MapFunc
}

// Initialize resolves the configured function.
func (p *MapProcessor) Initialize(ctx *runtime.Context) error {
	p.ctx = ctx
	var cfg FuncConfig
	if err := plugin.Decode(ctx.Payload, &cfg); err != nil {
		return err
	}
	fn, ok := mapFuncs[cfg.Func]
	if !ok {
		return fmt.Errorf("library: map func %q not registered", cfg.Func)
	}
	p.fn = fn
	return nil
}

// Run maps all inputs into all outputs.
func (p *MapProcessor) Run(inputs map[string]runtime.Input, outputs map[string]runtime.Output) error {
	w, err := fanOutWriter(outputs)
	if err != nil {
		return err
	}
	for name, in := range inputs {
		r, err := in.Reader()
		if err != nil {
			return err
		}
		kv, ok := r.(runtime.KVReader)
		if !ok {
			return fmt.Errorf("library: map input %s reader is %T, want KVReader", name, r)
		}
		for kv.Next() {
			if err := p.fn(kv.Key(), kv.Value(), w); err != nil {
				return err
			}
		}
		if err := kv.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close is a no-op.
func (p *MapProcessor) Close() error { return nil }

// ReduceProcessor is the built-in reduce-side processor: it streams every
// input's GroupedKVReader through the configured ReduceFunc.
type ReduceProcessor struct {
	ctx *runtime.Context
	fn  ReduceFunc
}

// Initialize resolves the configured function.
func (p *ReduceProcessor) Initialize(ctx *runtime.Context) error {
	p.ctx = ctx
	var cfg FuncConfig
	if err := plugin.Decode(ctx.Payload, &cfg); err != nil {
		return err
	}
	fn, ok := reduceFuncs[cfg.Func]
	if !ok {
		return fmt.Errorf("library: reduce func %q not registered", cfg.Func)
	}
	p.fn = fn
	return nil
}

// Run reduces all inputs into all outputs.
func (p *ReduceProcessor) Run(inputs map[string]runtime.Input, outputs map[string]runtime.Output) error {
	w, err := fanOutWriter(outputs)
	if err != nil {
		return err
	}
	for name, in := range inputs {
		r, err := in.Reader()
		if err != nil {
			return err
		}
		g, ok := r.(runtime.GroupedKVReader)
		if !ok {
			return fmt.Errorf("library: reduce input %s reader is %T, want GroupedKVReader", name, r)
		}
		for g.Next() {
			if err := p.fn(g.Key(), g.Values(), w); err != nil {
				return err
			}
		}
		if err := g.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close is a no-op.
func (p *ReduceProcessor) Close() error { return nil }

// fanOutWriter writes each pair to every output's KVWriter.
func fanOutWriter(outputs map[string]runtime.Output) (runtime.KVWriter, error) {
	writers := make([]runtime.KVWriter, 0, len(outputs))
	for name, out := range outputs {
		w, err := out.Writer()
		if err != nil {
			return nil, err
		}
		kw, ok := w.(runtime.KVWriter)
		if !ok {
			return nil, fmt.Errorf("library: output %s writer is %T, want KVWriter", name, w)
		}
		writers = append(writers, kw)
	}
	return kvWriterFunc(func(k, v []byte) error {
		for _, w := range writers {
			if err := w.Write(k, v); err != nil {
				return err
			}
		}
		return nil
	}), nil
}
