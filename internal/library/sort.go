package library

import (
	"container/heap"
	"sort"
)

// sortPairs sorts in place by key (value tiebreak).
func sortPairs(ps []pair) {
	sort.Slice(ps, func(i, j int) bool { return compareKV(ps[i], ps[j]) < 0 })
}

// mergeReader k-way merges sorted runs (each an encoded buffer) into a
// single key-ordered stream. It implements runtime.KVReader.
type mergeReader struct {
	h   runHeap
	key []byte
	val []byte
	err error
}

type runCursor struct {
	r *BufferReader
}

type runHeap []*runCursor

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	return compareKV(pair{h[i].r.Key(), h[i].r.Value()}, pair{h[j].r.Key(), h[j].r.Value()}) < 0
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(*runCursor)) }
func (h *runHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// newMergeReader primes a cursor per non-empty run.
func newMergeReader(runs [][]byte) *mergeReader {
	m := &mergeReader{}
	for _, run := range runs {
		c := &runCursor{r: NewBufferReader(run)}
		if c.r.Next() {
			m.h = append(m.h, c)
		} else if err := c.r.Err(); err != nil {
			m.err = err
		}
	}
	heap.Init(&m.h)
	return m
}

// Next pops the globally smallest pair.
func (m *mergeReader) Next() bool {
	if m.err != nil || m.h.Len() == 0 {
		return false
	}
	c := m.h[0]
	m.key = c.r.Key()
	m.val = c.r.Value()
	if c.r.Next() {
		heap.Fix(&m.h, 0)
	} else {
		if err := c.r.Err(); err != nil {
			m.err = err
			return false
		}
		heap.Pop(&m.h)
	}
	return true
}

func (m *mergeReader) Key() []byte   { return m.key }
func (m *mergeReader) Value() []byte { return m.val }
func (m *mergeReader) Err() error    { return m.err }

// groupedReader groups a key-ordered KV stream into (key, values) — the
// reduce-side view. It implements runtime.GroupedKVReader.
//
// It is zero-copy: values are slices into the fetched run buffers (alive
// for the whole task), the key lives in one buffer reused across groups,
// and the values container is truncated and refilled rather than
// reallocated — amortised, a group costs no allocations at all. The
// contract is that Key and Values are valid only until the next call to
// Next; consumers that need the bytes longer must copy them.
type groupedReader struct {
	src     *mergeReader
	key     []byte   // reused across groups
	values  [][]byte // reused container; elements point into run buffers
	pending bool     // src is positioned at the first pair of the next group
	err     error
}

func newGroupedReader(src *mergeReader) *groupedReader {
	g := &groupedReader{src: src}
	g.pending = src.Next()
	return g
}

// Next collects the next key group.
func (g *groupedReader) Next() bool {
	if g.err != nil {
		return false
	}
	if !g.pending {
		g.err = g.src.Err()
		return false
	}
	g.key = append(g.key[:0], g.src.Key()...)
	g.values = append(g.values[:0], g.src.Value())
	for {
		if !g.src.Next() {
			g.pending = false
			g.err = g.src.Err()
			return true
		}
		if string(g.src.Key()) != string(g.key) {
			g.pending = true
			return true
		}
		g.values = append(g.values, g.src.Value())
	}
}

func (g *groupedReader) Key() []byte      { return g.key }
func (g *groupedReader) Values() [][]byte { return g.values }
func (g *groupedReader) Err() error       { return g.err }
