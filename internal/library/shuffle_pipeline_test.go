package library

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tez/internal/event"
	"tez/internal/metrics"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

// producePipelined runs one ordered producer like produceCfg, but with a
// collecting Emit: pipelined increments are announced through ctx.Emit as
// they are published, and a discard Emit would lose them. The returned
// slice has the incremental events first (in publication order) and the
// Close events (final increment + VMStats) last — mailbox order.
func producePipelined(t *testing.T, svc runtime.Services, cfg *OrderedPartitionedConfig, task, parts int, write func(w runtime.KVWriter)) []event.Event {
	t.Helper()
	var payload []byte
	if cfg != nil {
		payload = plugin.MustEncode(*cfg)
	}
	out := &OrderedPartitionedKVOutput{}
	meta := runtime.Meta{DAG: "d", Vertex: "map", Task: task, Attempt: 0}
	ctx := ctxFor(svc, meta, "red", payload, parts)
	var emitted []event.Event
	ctx.Emit = func(ev event.Event) { emitted = append(emitted, ev) }
	if err := out.Initialize(ctx); err != nil {
		t.Fatal(err)
	}
	wAny, err := out.Writer()
	if err != nil {
		t.Fatal(err)
	}
	write(wAny.(runtime.KVWriter))
	closeEvents, err := out.Close()
	if err != nil {
		t.Fatal(err)
	}
	return append(emitted, closeEvents...)
}

// dmSpill builds a pipelined increment announcement: envelope
// (SrcSpill/SrcMore) and DMInfo payload agree, as the producer emits them.
func dmSpill(idx, task, attempt, spill int, more bool, id shuffle.OutputID) event.DataMovement {
	return event.DataMovement{
		SrcVertex: "map", SrcTask: task, SrcAttempt: attempt,
		SrcSpill: spill, SrcMore: more,
		TargetInput: "map", TargetInputIndex: idx,
		Payload: plugin.MustEncode(DMInfo{ID: id, Spill: spill, Final: !more}),
	}
}

// sumJoined parses consumeGrouped's "v1,v2,..." joined values and sums
// them as integers.
func sumJoined(t *testing.T, joined string) int {
	t.Helper()
	total := 0
	for _, v := range strings.Split(strings.TrimSuffix(joined, ","), ",") {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad value %q in %q: %v", v, joined, err)
		}
		total += n
	}
	return total
}

// TestPipelinedByteIdentical is the pipelined-path acceptance test: the
// grouped bytes a consumer reads must be a pure function of the record
// multiset, independent of how many increments carried it. Without a
// combiner the grouped streams must match exactly; with one, combining
// per increment instead of once over everything changes the intermediate
// multiset but must preserve the per-key totals (summing is associative).
func TestPipelinedByteIdentical(t *testing.T) {
	const srcTasks, parts, records = 3, 2, 3000
	for _, combiner := range []string{"", "test.sum"} {
		t.Run("combiner="+combiner, func(t *testing.T) {
			run := func(pipelined bool) (map[int]map[string]string, *metrics.Counters) {
				svc := testServices(t)
				ctr := metrics.NewCounters()
				svc.Counters = ctr
				cfg := &OrderedPartitionedConfig{Combiner: combiner}
				var all []event.Event
				for s := 0; s < srcTasks; s++ {
					if pipelined {
						pcfg := *cfg
						pcfg.Pipelined = true
						pcfg.SortBytes = 2048
						all = append(all, producePipelined(t, svc, &pcfg, s, parts, writeWordRecords(records))...)
					} else {
						evs, _ := produceCfg(t, svc, cfg, s, parts, writeWordRecords(records))
						all = append(all, evs...)
					}
				}
				got := map[int]map[string]string{}
				for p := 0; p < parts; p++ {
					got[p] = consumeGrouped(t, svc, all, p, srcTasks)
				}
				return got, ctr
			}
			barrier, _ := run(false)
			pipelined, ctr := run(true)
			if incs := ctr.Get("SHUFFLE_INCREMENTS"); incs <= srcTasks*parts {
				t.Fatalf("SHUFFLE_INCREMENTS = %d, want > %d (several increments per source)", incs, srcTasks*parts)
			}
			if spills := ctr.Get("SHUFFLE_SPILLS"); spills == 0 {
				t.Fatal("no pipelined spills published")
			}
			for p := 0; p < parts; p++ {
				if len(barrier[p]) == 0 {
					t.Fatalf("partition %d: barrier read no groups", p)
				}
				if len(pipelined[p]) != len(barrier[p]) {
					t.Fatalf("partition %d: group count %d vs %d", p, len(pipelined[p]), len(barrier[p]))
				}
				for k, v := range barrier[p] {
					pv, ok := pipelined[p][k]
					if !ok {
						t.Fatalf("partition %d: group %q missing under pipelining", p, k)
					}
					if combiner == "" {
						if pv != v {
							t.Fatalf("partition %d group %q differs: %q vs %q", p, k, pv, v)
						}
					} else if sumJoined(t, pv) != sumJoined(t, v) {
						t.Fatalf("partition %d group %q total differs: %q vs %q", p, k, pv, v)
					}
				}
			}
		})
	}
}

// TestPipelinedCountersExact: without a combiner every record crosses the
// wire exactly once regardless of increment count, so the consumer's byte
// account must equal the barrier run's, and wire must equal raw under the
// default codec even though it was charged increment by increment.
func TestPipelinedCountersExact(t *testing.T) {
	const srcTasks, parts, records = 3, 2, 2000
	run := func(cfg *OrderedPartitionedConfig) *metrics.Counters {
		svc := testServices(t)
		ctr := metrics.NewCounters()
		svc.Counters = ctr
		var all []event.Event
		for s := 0; s < srcTasks; s++ {
			if cfg.Pipelined {
				all = append(all, producePipelined(t, svc, cfg, s, parts, writeWordRecords(records))...)
			} else {
				evs, _ := produceCfg(t, svc, cfg, s, parts, writeWordRecords(records))
				all = append(all, evs...)
			}
		}
		for p := 0; p < parts; p++ {
			consumeGrouped(t, svc, all, p, srcTasks)
		}
		return ctr
	}
	bar := run(&OrderedPartitionedConfig{})
	pip := run(&OrderedPartitionedConfig{Pipelined: true, SortBytes: 4096})
	if got, want := pip.Get("SHUFFLE_BYTES_RAW"), bar.Get("SHUFFLE_BYTES_RAW"); got != want {
		t.Fatalf("pipelined raw bytes %d != barrier %d", got, want)
	}
	if w, r := pip.Get("SHUFFLE_BYTES_WIRE"), pip.Get("SHUFFLE_BYTES_RAW"); w != r {
		t.Fatalf("codec none: wire %d != raw %d", w, r)
	}
	if pi, bi := pip.Get("SHUFFLE_INCREMENTS"), bar.Get("SHUFFLE_INCREMENTS"); pi <= bi {
		t.Fatalf("pipelined increments %d not above barrier's %d", pi, bi)
	}
	if f, i := pip.Get("SHUFFLE_FETCHES"), pip.Get("SHUFFLE_INCREMENTS"); f < i {
		t.Fatalf("fetches %d < stored increments %d", f, i)
	}
}

// TestPipelinedEnvelope pins the publication protocol: per partition the
// increments are densely numbered from 0 in publication order, exactly
// the last one clears SrcMore, the DMInfo payload agrees with the
// envelope, every spill-indexed registration is fetchable, and the final
// VMStats reports the same per-partition raw totals a barrier run would.
func TestPipelinedEnvelope(t *testing.T) {
	const parts, records = 2, 3000
	svc := testServices(t)
	events := producePipelined(t, svc, &OrderedPartitionedConfig{Pipelined: true, SortBytes: 2048}, 0, parts, writeWordRecords(records))

	perPart := map[int][]event.DataMovement{}
	var stats []VMStats
	for _, ev := range events {
		switch e := ev.(type) {
		case event.DataMovement:
			perPart[e.SrcOutputIndex] = append(perPart[e.SrcOutputIndex], e)
		case event.VertexManagerEvent:
			var vs VMStats
			if err := plugin.Decode(e.Payload, &vs); err != nil {
				t.Fatal(err)
			}
			stats = append(stats, vs)
		}
	}
	if len(perPart) != parts {
		t.Fatalf("movements for %d partitions, want %d", len(perPart), parts)
	}
	total := len(perPart[0])
	if total < 3 {
		t.Fatalf("only %d increments; budget did not force a multi-increment stream", total)
	}
	for p := 0; p < parts; p++ {
		dms := perPart[p]
		if len(dms) != total {
			t.Fatalf("partition %d has %d increments, partition 0 has %d (streams must stay dense)", p, len(dms), total)
		}
		for i, dm := range dms {
			if dm.SrcSpill != i {
				t.Fatalf("partition %d increment %d announced SrcSpill %d", p, i, dm.SrcSpill)
			}
			if got, want := dm.SrcMore, i < total-1; got != want {
				t.Fatalf("partition %d increment %d SrcMore = %v", p, i, got)
			}
			var info DMInfo
			if err := plugin.Decode(dm.Payload, &info); err != nil {
				t.Fatal(err)
			}
			if info.Spill != dm.SrcSpill || info.Final != !dm.SrcMore || info.Partition != p {
				t.Fatalf("payload disagrees with envelope: %+v vs spill %d more %v", info, dm.SrcSpill, dm.SrcMore)
			}
			if info.ID.Spill != i {
				t.Fatalf("registration id not spill-indexed: %+v", info.ID)
			}
			if _, err := svc.Shuffle.Fetch(info.ID, p, "n0"); err != nil {
				t.Fatalf("increment %d of partition %d not fetchable: %v", i, p, err)
			}
		}
	}
	if len(stats) != 1 {
		t.Fatalf("%d VMStats events, want 1", len(stats))
	}

	// Same records through the barrier: the advertised partition totals
	// must match (combiner-free, so sizes are a function of the records).
	barrierEvents, _ := produceCfg(t, testServices(t), nil, 0, parts, writeWordRecords(records))
	for _, ev := range barrierEvents {
		if e, ok := ev.(event.VertexManagerEvent); ok {
			var vs VMStats
			if err := plugin.Decode(e.Payload, &vs); err != nil {
				t.Fatal(err)
			}
			for p := range vs.PartitionSizes {
				if stats[0].PartitionSizes[p] != vs.PartitionSizes[p] {
					t.Fatalf("partition %d raw total %d != barrier %d", p, stats[0].PartitionSizes[p], vs.PartitionSizes[p])
				}
			}
		}
	}
}

// TestPipelinedGroupedReadAllocs: folding an increment-rich stream (16
// runs, as four pipelined sources of four spills each would leave) into
// the grouped reader must stay within the one-allocation-per-record
// budget of the barrier path — pipelining may not reintroduce per-value
// copies.
func TestPipelinedGroupedReadAllocs(t *testing.T) {
	runs := buildGroupedRuns(16, 100, 2)
	var total int
	allocs := testing.AllocsPerRun(5, func() {
		g := newGroupedReader(newMergeReader(runs))
		n := 0
		for g.Next() {
			n += len(g.Values())
		}
		if g.Err() != nil {
			t.Fatal(g.Err())
		}
		total = n
	})
	if total != 16*100*2 {
		t.Fatalf("read %d records", total)
	}
	if perRecord := allocs / float64(total); perRecord > 1 {
		t.Fatalf("allocs/record = %.2f (total %.0f), want <= 1", perRecord, allocs)
	}
}

// TestPipelinedFetchRetractionStress races increment arrival against
// InputFailed retraction under -race: 12 sources each publish a 4-spill
// stream, 5 of them die mid-stream and are replaced by a 2-increment
// attempt-1 stream, with 30% injected transient fetch errors throughout.
// The surviving runs must be exactly the expected streams in (input,
// spill) order.
func TestPipelinedFetchRetractionStress(t *testing.T) {
	base := testServices(t)
	sh := shuffle.New(shuffle.Config{TransientErrorRate: 0.3, Seed: 17})
	for i := 0; i < 3; i++ {
		sh.AddNode(fmt.Sprintf("n%d", i), "r0")
	}
	svc := base
	svc.Shuffle = sh
	svc.Counters = metrics.NewCounters()

	const phys, incs, retracted, replIncs = 12, 4, 5, 2
	ctx := ctxFor(svc, runtime.Meta{DAG: "d", Vertex: "red"}, "map", nil, phys)
	fs := newFetchSet(ctx)
	fs.fetcher.MaxRetries = 100 // absorb the 30% injected transient errors
	fs.fetcher.Backoff = time.Microsecond

	var want [][]byte
	for i := 0; i < phys; i++ {
		for s := 0; s < incs; s++ {
			id := shuffle.OutputID{DAG: "d", Vertex: "map", Task: i, Attempt: 0, Spill: s}
			run := registerRun(t, svc, fmt.Sprintf("n%d", i%3), id, fmt.Sprintf("t%d-a0-s%d", i, s))
			if i >= retracted {
				want = append(want, run)
			}
		}
	}
	var wantRetracted [][]byte
	for i := 0; i < retracted; i++ {
		for s := 0; s < replIncs; s++ {
			id := shuffle.OutputID{DAG: "d", Vertex: "map", Task: i, Attempt: 1, Spill: s}
			wantRetracted = append(wantRetracted, registerRun(t, svc, fmt.Sprintf("n%d", (i+1)%3), id, fmt.Sprintf("t%d-a1-s%d", i, s)))
		}
	}
	// flattenStored order is (input asc, spill asc): replacement streams of
	// inputs 0..retracted-1 first, then the intact attempt-0 streams.
	want = append(wantRetracted, want...)

	// One goroutine delivers the whole event stream in mailbox order —
	// full attempt-0 streams, then for each dying input the retraction
	// followed by its replacement stream — while the fetcher pool races
	// against it, so retractions land on queued, in-flight and
	// already-stored increments alike.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < phys; i++ {
			for s := 0; s < incs; s++ {
				id := shuffle.OutputID{DAG: "d", Vertex: "map", Task: i, Attempt: 0, Spill: s}
				_ = fs.handleEvent(dmSpill(i, i, 0, s, s < incs-1, id))
			}
		}
		for i := 0; i < retracted; i++ {
			_ = fs.handleEvent(event.InputFailed{TargetInputIndex: i, SrcTask: i, SrcAttempt: 0})
			for s := 0; s < replIncs; s++ {
				id := shuffle.OutputID{DAG: "d", Vertex: "map", Task: i, Attempt: 1, Spill: s}
				_ = fs.handleEvent(dmSpill(i, i, 1, s, s < replIncs-1, id))
			}
		}
	}()
	fs.start()
	wg.Wait()

	runs, err := fs.wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(want) {
		t.Fatalf("got %d runs, want %d", len(runs), len(want))
	}
	for i := range runs {
		if !bytes.Equal(runs[i], want[i]) {
			t.Fatalf("run %d = %q, want %q", i, runs[i], want[i])
		}
	}
	if svc.Counters.Get("SHUFFLE_FETCH_RETRIES") == 0 {
		t.Fatal("expected injected transient errors to be retried")
	}
	if got := svc.Counters.Get("SHUFFLE_INCREMENTS"); got < int64(len(want)) {
		t.Fatalf("SHUFFLE_INCREMENTS = %d, want >= %d", got, len(want))
	}
	if err := fs.close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedNegativeSpillRejected: a corrupt or malicious negative
// spill index must be refused at the door, not poison the stream state.
func TestPipelinedNegativeSpillRejected(t *testing.T) {
	fs := newFetchSet(ctxFor(testServices(t), runtime.Meta{DAG: "d", Vertex: "red"}, "map", nil, 1))
	dm := dmSpill(0, 0, 0, 0, false, shuffle.OutputID{DAG: "d", Vertex: "map"})
	dm.SrcSpill = -1
	if err := fs.handleEvent(dm); err == nil {
		t.Fatal("negative spill index accepted")
	}
	if len(fs.states) != 0 {
		t.Fatal("rejected movement left stream state behind")
	}
}

// dmInfoV2 is DMInfo plus trailing fields a future revision might add —
// gob ignores unknown fields, so decoding such payloads must keep working.
type dmInfoV2 struct {
	ID        shuffle.OutputID
	Partition int
	Size      int64
	RawSize   int64
	Codec     string
	Spill     int
	Final     bool
	Checksum  uint32
	Extra     []byte
}

// FuzzDMInfo shakes the DataMovement payload decoder plus the consumer's
// envelope validation: arbitrary bytes must never panic, and any decoded
// spill index must be accepted or rejected exactly by its sign.
func FuzzDMInfo(f *testing.F) {
	id := shuffle.OutputID{DAG: "d", Vertex: "map", Name: "red", Task: 3, Attempt: 1, Spill: 2}
	f.Add(plugin.MustEncode(DMInfo{ID: id, Partition: 1, Size: 10, RawSize: 20, Codec: "flate", Spill: 2, Final: true}))
	f.Add(plugin.MustEncode(DMInfo{}))
	f.Add(plugin.MustEncode(dmInfoV2{ID: id, Spill: 1 << 40, Checksum: 0xdeadbeef, Extra: []byte("x")}))
	f.Add(plugin.MustEncode(dmInfoV2{Spill: -3, Final: true}))
	f.Add([]byte{})
	f.Add([]byte{0x42, 0xff, 0x00, 0x07, 0x80})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var info DMInfo
		if err := plugin.Decode(payload, &info); err != nil {
			return
		}
		fs := newFetchSet(ctxFor(runtime.Services{}, runtime.Meta{DAG: "d", Vertex: "red"}, "map", nil, 1))
		err := fs.handleEvent(event.DataMovement{
			SrcVertex: "map", SrcTask: 0, SrcAttempt: 0,
			SrcSpill: info.Spill, SrcMore: !info.Final,
			TargetInput: "map", TargetInputIndex: 0,
			Payload: payload,
		})
		if info.Spill < 0 && err == nil {
			t.Fatalf("negative spill %d accepted", info.Spill)
		}
		if info.Spill >= 0 && err != nil {
			t.Fatalf("valid spill %d rejected: %v", info.Spill, err)
		}
	})
}
