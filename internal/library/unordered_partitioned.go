package library

import (
	"fmt"

	"tez/internal/event"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

// UnorderedPartitionedOutputName is the partitioned-but-unsorted map-side
// transport (Tez's UnorderedPartitionedKVOutput): rows are bucketed by the
// partitioner without any ordering guarantee, for consumers that do not
// need sorted/grouped input (e.g. repartitioning jobs). Pair it with
// UnorderedInputName on a scatter-gather edge.
const UnorderedPartitionedOutputName = "tez.unordered_partitioned_output"

func init() {
	runtime.RegisterOutput(UnorderedPartitionedOutputName, func() runtime.Output {
		return &UnorderedPartitionedKVOutput{}
	})
}

// UnorderedPartitionedKVOutput buckets pairs by the configured partitioner
// and registers the unsorted partitions with the shuffle service.
type UnorderedPartitionedKVOutput struct {
	ctx         *runtime.Context
	cfg         OrderedPartitionedConfig // same config shape (partitioner + stats)
	partitioner Partitioner
	parts       [][]byte
}

// Initialize decodes configuration and prepares partition buffers.
func (o *UnorderedPartitionedKVOutput) Initialize(ctx *runtime.Context) error {
	o.ctx = ctx
	if len(ctx.Payload) > 0 {
		if err := plugin.Decode(ctx.Payload, &o.cfg); err != nil {
			return err
		}
	}
	p, err := o.cfg.Partitioner.New()
	if err != nil {
		return err
	}
	o.partitioner = p
	if ctx.PhysicalCount <= 0 {
		return fmt.Errorf("library: unordered partitioned output with %d partitions", ctx.PhysicalCount)
	}
	o.parts = make([][]byte, ctx.PhysicalCount)
	return nil
}

// Writer returns a runtime.KVWriter bucketing into partitions.
func (o *UnorderedPartitionedKVOutput) Writer() (any, error) {
	return kvWriterFunc(func(k, v []byte) error {
		p := o.partitioner.Partition(k, len(o.parts))
		o.parts[p] = AppendRecord(o.parts[p], k, v)
		return nil
	}), nil
}

// Close registers and announces the partitions.
func (o *UnorderedPartitionedKVOutput) Close() ([]event.Event, error) {
	id := shuffle.OutputID{
		DAG:     o.ctx.Meta.DAG,
		Vertex:  o.ctx.Meta.Vertex,
		Name:    o.ctx.Name,
		Task:    o.ctx.Meta.Task,
		Attempt: o.ctx.Meta.Attempt,
	}
	if err := o.ctx.Services.Shuffle.Register(o.ctx.Services.Node, id, o.parts, o.ctx.Services.Token); err != nil {
		return nil, err
	}
	events := make([]event.Event, 0, len(o.parts)+1)
	sizes := make([]int64, len(o.parts))
	for i, p := range o.parts {
		sizes[i] = int64(len(p))
		events = append(events, event.DataMovement{
			SrcVertex:      o.ctx.Meta.Vertex,
			SrcTask:        o.ctx.Meta.Task,
			SrcAttempt:     o.ctx.Meta.Attempt,
			SrcOutputIndex: i,
			TargetVertex:   o.ctx.Name,
			Payload:        plugin.MustEncode(DMInfo{ID: id, Partition: i, Size: sizes[i]}),
		})
	}
	if !o.cfg.NoStats {
		events = append(events, event.VertexManagerEvent{
			TargetVertex: o.ctx.Name,
			SrcVertex:    o.ctx.Meta.Vertex,
			SrcTask:      o.ctx.Meta.Task,
			Payload:      plugin.MustEncode(VMStats{PartitionSizes: sizes}),
		})
	}
	return events, nil
}
