package library

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Deterministic corruption coverage for the record framing: every
// malformed prefix must surface as an error or a clean stop — never a
// panic or an out-of-range slice.

func TestDecodeRecordTruncatedHeader(t *testing.T) {
	// A multi-byte varint cut off mid-way: 0x80 says "more bytes follow"
	// and there are none.
	if _, _, _, err := DecodeRecord([]byte{0x80}); err == nil {
		t.Fatal("truncated varint header accepted")
	}
	// Header says 100-byte key, buffer has 3.
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], 101)
	if _, _, _, err := DecodeRecord(append(hdr[:n:n], 'a', 'b', 'c')); err == nil {
		t.Fatal("truncated key accepted")
	}
	// Valid key, value header truncated.
	rec := AppendRecord(nil, []byte("k"), []byte("vvvv"))
	if _, _, _, err := DecodeRecord(rec[:len(rec)-2]); err == nil {
		t.Fatal("truncated value accepted")
	}
	// Value header missing entirely.
	if _, _, _, err := DecodeRecord(rec[:2]); err == nil {
		t.Fatal("missing value header accepted")
	}
}

func TestPaddingByteCollision(t *testing.T) {
	// 0x00 bytes inside keys and values must survive the +1 length bias:
	// only a LEADING 0x00 is padding.
	key := []byte{0x00, 'k', 0x00}
	val := []byte{0x00, 0x00}
	rec := AppendRecord(nil, key, val)
	k, v, n, err := DecodeRecord(rec)
	if err != nil || n != len(rec) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if !bytes.Equal(k, key) || !bytes.Equal(v, val) {
		t.Fatalf("round trip: key=%q val=%q", k, v)
	}
	// Leading zero is padding: consumed == 0, no error.
	if _, _, n, err := DecodeRecord(append([]byte{0x00}, rec...)); n != 0 || err != nil {
		t.Fatalf("padding prefix: n=%d err=%v", n, err)
	}
	// Empty key and value are representable (length bias 1, not 0).
	rec = AppendRecord(nil, nil, nil)
	if k, v, n, err := DecodeRecord(rec); err != nil || n != len(rec) || len(k) != 0 || len(v) != 0 {
		t.Fatalf("empty record: k=%q v=%q n=%d err=%v", k, v, n, err)
	}
	// StripPadding keeps interior zeros and drops boundary ones.
	padded := append([]byte{0x00, 0x00}, AppendRecord(nil, key, val)...)
	padded = append(padded, 0x00)
	stripped := StripPadding(padded)
	if k, v, _, err := DecodeRecord(stripped); err != nil || !bytes.Equal(k, key) || !bytes.Equal(v, val) {
		t.Fatalf("strip padding: k=%q v=%q err=%v", k, v, err)
	}
}

func TestFlateBlockCorruption(t *testing.T) {
	raw := AppendRecord(nil, []byte("key"), bytes.Repeat([]byte("value"), 100))
	wire, err := encodeBlock(flateCodec{}, raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBlock("flate", wire, len(raw))
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("round trip failed: err=%v", err)
	}
	if _, err := decodeBlock("flate", wire[:len(wire)/2], len(raw)); err == nil {
		t.Fatal("truncated flate block accepted")
	}
	if _, err := decodeBlock("flate", wire, len(raw)+1); err == nil {
		t.Fatal("raw-size mismatch accepted")
	}
	if _, err := decodeBlock("no-such-codec", wire, len(raw)); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x80})
	f.Add(AppendRecord(nil, []byte("k"), []byte("v")))
	f.Add(AppendRecord(nil, nil, nil))
	f.Add(AppendRecord(nil, []byte{0x00}, bytes.Repeat([]byte{0x00}, 10)))
	f.Add(append(AppendRecord(nil, []byte("k"), []byte("v")), 0x80, 0x80))
	f.Fuzz(func(t *testing.T, buf []byte) {
		key, value, n, err := DecodeRecord(buf)
		if err != nil {
			return
		}
		if n == 0 {
			if len(buf) > 0 && buf[0] != paddingByte {
				t.Fatalf("zero consumed on non-padding input %x", buf)
			}
			return
		}
		if n > len(buf) {
			t.Fatalf("consumed %d of %d", n, len(buf))
		}
		// A successfully decoded record re-encodes to the bytes just
		// consumed whenever the varint headers are minimal; re-decoding
		// the re-encoding must round-trip regardless.
		re := AppendRecord(nil, key, value)
		k2, v2, n2, err := DecodeRecord(re)
		if err != nil || n2 != len(re) || !bytes.Equal(k2, key) || !bytes.Equal(v2, value) {
			t.Fatalf("re-encode round trip: n=%d err=%v", n2, err)
		}
	})
}

func FuzzBufferReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(AppendRecord(nil, []byte("a"), []byte("1")), []byte("b"), []byte("2")))
	f.Add([]byte{0x05, 0x01, 0x02})
	f.Add(bytes.Repeat([]byte{0xff}, 16))
	f.Fuzz(func(t *testing.T, buf []byte) {
		r := NewBufferReader(buf)
		total := 0
		for r.Next() {
			total += RecordSize(r.Key(), r.Value())
			if total > len(buf) {
				t.Fatalf("decoded more bytes than the buffer holds (%d > %d)", total, len(buf))
			}
		}
		// Err may or may not be set; the invariant is termination without
		// panics and without reading past the buffer.
		_ = r.Err()
	})
}
