package library

import (
	"tez/internal/event"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

// Registered names of the unordered transports (broadcast and one-to-one
// edges).
const (
	UnorderedOutputName = "tez.unordered_output"
	UnorderedInputName  = "tez.unordered_input"
)

func init() {
	runtime.RegisterOutput(UnorderedOutputName, func() runtime.Output { return &UnorderedKVOutput{} })
	runtime.RegisterInput(UnorderedInputName, func() runtime.Input { return &UnorderedKVInput{} })
}

// UnorderedKVOutput writes a single unsorted partition and announces it
// with one DataMovement event — the transport of broadcast and one-to-one
// edges.
type UnorderedKVOutput struct {
	ctx *runtime.Context
	buf []byte
}

// Initialize stores the context.
func (o *UnorderedKVOutput) Initialize(ctx *runtime.Context) error {
	o.ctx = ctx
	return nil
}

// Writer returns a runtime.KVWriter appending to the single partition.
func (o *UnorderedKVOutput) Writer() (any, error) {
	return kvWriterFunc(func(k, v []byte) error {
		o.buf = AppendRecord(o.buf, k, v)
		return nil
	}), nil
}

// Close registers the partition and announces it.
func (o *UnorderedKVOutput) Close() ([]event.Event, error) {
	id := shuffle.OutputID{
		DAG:     o.ctx.Meta.DAG,
		Vertex:  o.ctx.Meta.Vertex,
		Name:    o.ctx.Name,
		Task:    o.ctx.Meta.Task,
		Attempt: o.ctx.Meta.Attempt,
	}
	if err := o.ctx.Services.Shuffle.Register(o.ctx.Services.Node, id, [][]byte{o.buf}, o.ctx.Services.Token); err != nil {
		return nil, err
	}
	return []event.Event{event.DataMovement{
		SrcVertex:      o.ctx.Meta.Vertex,
		SrcTask:        o.ctx.Meta.Task,
		SrcAttempt:     o.ctx.Meta.Attempt,
		SrcOutputIndex: 0,
		TargetVertex:   o.ctx.Name,
		Payload:        plugin.MustEncode(DMInfo{ID: id, Partition: 0, Size: int64(len(o.buf))}),
	}}, nil
}

// UnorderedKVInput fetches its physical inputs and exposes them as one
// concatenated, unsorted runtime.KVReader.
type UnorderedKVInput struct {
	fs *fetchSet
}

// Initialize prepares the fetch machinery.
func (in *UnorderedKVInput) Initialize(ctx *runtime.Context) error {
	in.fs = newFetchSet(ctx)
	return nil
}

// HandleEvent accepts DataMovement / InputFailed events.
func (in *UnorderedKVInput) HandleEvent(ev event.Event) error { return in.fs.handleEvent(ev) }

// Start begins fetching.
func (in *UnorderedKVInput) Start() error { in.fs.start(); return nil }

// Reader blocks for all physical inputs, then returns a KVReader over
// their concatenation in input-index order.
func (in *UnorderedKVInput) Reader() (any, error) {
	runs, err := in.fs.wait()
	if err != nil {
		return nil, err
	}
	return newConcatReader(runs), nil
}

// Close stops fetchers.
func (in *UnorderedKVInput) Close() error { return in.fs.close() }

// concatReader iterates multiple encoded buffers back to back.
type concatReader struct {
	bufs []([]byte)
	cur  *BufferReader
	idx  int
	err  error
}

func newConcatReader(bufs [][]byte) *concatReader {
	return &concatReader{bufs: bufs}
}

// Next advances across buffer boundaries.
func (c *concatReader) Next() bool {
	for {
		if c.cur == nil {
			if c.idx >= len(c.bufs) {
				return false
			}
			c.cur = NewBufferReader(c.bufs[c.idx])
			c.idx++
		}
		if c.cur.Next() {
			return true
		}
		if err := c.cur.Err(); err != nil {
			c.err = err
			return false
		}
		c.cur = nil
	}
}

func (c *concatReader) Key() []byte   { return c.cur.Key() }
func (c *concatReader) Value() []byte { return c.cur.Value() }
func (c *concatReader) Err() error    { return c.err }
