package library

import (
	"bytes"
	"slices"
	"sync"

	"tez/internal/metrics"
)

// The map-side sort buffer of the ordered shuffle output: record bytes
// are appended to one contiguous arena and indexed by compact
// {partition, offset, lengths} entries, so writing a record allocates
// nothing (amortised) and sorting moves 24-byte index entries instead of
// boxed key/value copies — the in-process analog of Tez's ExternalSorter
// buffer, where the same trick (sort a pointer index over a byte buffer)
// is what makes the sort cache- and GC-friendly.

// recRef locates one record in the arena.
type recRef struct {
	off        int64
	part       int32
	klen, vlen int32
}

const recRefSize = 24 // bytes charged against the sort budget per entry

// sortBuffer is an arena plus its index. It is single-writer (the task's
// processor goroutine) and reused across tasks via sortBufferPool.
type sortBuffer struct {
	arena []byte
	refs  []recRef
}

var sortBufferPool = sync.Pool{New: func() any { return new(sortBuffer) }}

func (sb *sortBuffer) add(part int, k, v []byte) {
	off := int64(len(sb.arena))
	sb.arena = append(sb.arena, k...)
	sb.arena = append(sb.arena, v...)
	sb.refs = append(sb.refs, recRef{off: off, part: int32(part), klen: int32(len(k)), vlen: int32(len(v))})
}

func (sb *sortBuffer) key(r recRef) []byte {
	return sb.arena[r.off : r.off+int64(r.klen)]
}

func (sb *sortBuffer) val(r recRef) []byte {
	return sb.arena[r.off+int64(r.klen) : r.off+int64(r.klen)+int64(r.vlen)]
}

// used is the memory charged against the SortMB budget.
func (sb *sortBuffer) used() int64 {
	return int64(len(sb.arena)) + int64(len(sb.refs))*recRefSize
}

// sort orders the index by (partition, key, value). The value tiebreak
// makes the order — and therefore every downstream merge — a pure
// function of the record multiset, so spill counts and merge-tree shape
// never change the output bytes.
func (sb *sortBuffer) sort() {
	slices.SortFunc(sb.refs, func(a, b recRef) int {
		if a.part != b.part {
			return int(a.part) - int(b.part)
		}
		if c := bytes.Compare(sb.key(a), sb.key(b)); c != 0 {
			return c
		}
		return bytes.Compare(sb.val(a), sb.val(b))
	})
}

// partSpan returns the sorted index segment of one partition. refs must
// be sorted.
func (sb *sortBuffer) partSpan(part int) []recRef {
	lo, _ := slices.BinarySearchFunc(sb.refs, int32(part), func(r recRef, p int32) int { return int(r.part - p) })
	hi, _ := slices.BinarySearchFunc(sb.refs, int32(part+1), func(r recRef, p int32) int { return int(r.part - p) })
	return sb.refs[lo:hi]
}

// reset keeps capacity for the next task in a reused container.
func (sb *sortBuffer) reset() {
	sb.arena = sb.arena[:0]
	sb.refs = sb.refs[:0]
}

// refsReader iterates a sorted index segment as a kvStream.
type refsReader struct {
	sb   *sortBuffer
	refs []recRef
	cur  recRef
	i    int
}

func (r *refsReader) Next() bool {
	if r.i >= len(r.refs) {
		return false
	}
	r.cur = r.refs[r.i]
	r.i++
	return true
}

func (r *refsReader) Key() []byte   { return r.sb.key(r.cur) }
func (r *refsReader) Value() []byte { return r.sb.val(r.cur) }
func (r *refsReader) Err() error    { return nil }

// runBufPool recycles spill-run and partition-encode buffers across
// spills and container-reused tasks. Only producer-side buffers go
// through it: shuffle.Service.Register copies partitions on entry, so a
// registered buffer may be reused immediately, whereas reduce-side run
// buffers are exposed zero-copy to processors and must not be recycled.
var runBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getRunBuf() []byte {
	b := runBufPool.Get().(*[]byte)
	return (*b)[:0]
}

func putRunBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	runBufPool.Put(&b)
}

// mergeEncodedRuns k-way merges sorted encoded runs into one sorted
// encoded buffer, optionally combining. Without a combiner the output is
// the exact interleaving of the inputs, so the result size is known up
// front.
func mergeEncodedRuns(runs [][]byte, combine CombineFunc, buf []byte, ctr *metrics.Counters) ([]byte, error) {
	var size int
	for _, r := range runs {
		size += len(r)
	}
	if cap(buf) < size {
		buf = make([]byte, 0, size)
	}
	return encodeStream(newMergeReader(runs), combine, buf, ctr)
}
