// Package library provides the built-in runtime components that ship with
// Tez (§4.1): key-value inputs and outputs for the shuffle service and the
// DFS, the sorted/partitioned and unordered transports, hash and range
// partitioners, map/reduce processors and output committers. Applications
// that use only these need to supply nothing but their processor logic.
package library

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Key-value record framing: varint(len(key)+1), key, varint(len(value)+1),
// value. The +1 bias reserves a leading 0x00 byte as the block-padding
// marker used by DFS record files so that records never straddle DFS block
// boundaries and byte-range splits are self-contained.

const paddingByte = 0x00

// AppendRecord appends the encoding of (key, value) to dst.
func AppendRecord(dst, key, value []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key))+1)
	dst = append(dst, hdr[:n]...)
	dst = append(dst, key...)
	n = binary.PutUvarint(hdr[:], uint64(len(value))+1)
	dst = append(dst, hdr[:n]...)
	dst = append(dst, value...)
	return dst
}

// RecordSize returns the encoded size of (key, value).
func RecordSize(key, value []byte) int {
	return uvarintLen(uint64(len(key))+1) + len(key) + uvarintLen(uint64(len(value))+1) + len(value)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeRecord reads one record from buf. It returns the key, value and
// bytes consumed, or consumed == 0 when buf starts with padding or is
// empty.
func DecodeRecord(buf []byte) (key, value []byte, consumed int, err error) {
	if len(buf) == 0 || buf[0] == paddingByte {
		return nil, nil, 0, nil
	}
	kl, n := binary.Uvarint(buf)
	// kl-1 > len(buf) also rejects lengths that would overflow int (a
	// fuzzer-found panic: int(kl-1) went negative and sliced [:negative]).
	if n <= 0 || kl == 0 || kl-1 > uint64(len(buf)) {
		return nil, nil, 0, fmt.Errorf("library: corrupt record header")
	}
	pos := n
	klen := int(kl - 1)
	if pos+klen > len(buf) {
		return nil, nil, 0, fmt.Errorf("library: truncated key")
	}
	key = buf[pos : pos+klen]
	pos += klen
	vl, n := binary.Uvarint(buf[pos:])
	if n <= 0 || vl == 0 || vl-1 > uint64(len(buf)) {
		return nil, nil, 0, fmt.Errorf("library: corrupt value header")
	}
	pos += n
	vlen := int(vl - 1)
	if pos+vlen > len(buf) {
		return nil, nil, 0, fmt.Errorf("library: truncated value")
	}
	value = buf[pos : pos+vlen]
	pos += vlen
	return key, value, pos, nil
}

// BufferReader iterates records in an encoded byte buffer (one shuffle
// partition, or one padded DFS block). It implements runtime.KVReader.
type BufferReader struct {
	buf  []byte
	pos  int
	key  []byte
	val  []byte
	err  error
	done bool
}

// NewBufferReader wraps an encoded buffer.
func NewBufferReader(buf []byte) *BufferReader { return &BufferReader{buf: buf} }

// Next advances to the next record.
func (r *BufferReader) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	k, v, n, err := DecodeRecord(r.buf[r.pos:])
	if err != nil {
		r.err = err
		return false
	}
	if n == 0 {
		r.done = true
		return false
	}
	r.key, r.val, r.pos = k, v, r.pos+n
	return true
}

// Key returns the current key.
func (r *BufferReader) Key() []byte { return r.key }

// Value returns the current value.
func (r *BufferReader) Value() []byte { return r.val }

// Err reports a decoding error, if any.
func (r *BufferReader) Err() error { return r.err }

// StripPadding removes block-padding zero bytes between records: records
// never begin with a 0x00 header byte, so zeros at record boundaries are
// unambiguous padding. Returns a compact record stream.
func StripPadding(data []byte) []byte {
	out := make([]byte, 0, len(data))
	for len(data) > 0 {
		if data[0] == paddingByte {
			data = data[1:]
			continue
		}
		_, _, n, err := DecodeRecord(data)
		if err != nil || n == 0 {
			break
		}
		out = append(out, data[:n]...)
		data = data[n:]
	}
	return out
}

// NewPaddedReader iterates the records of a (possibly block-padded)
// buffer, e.g. a whole record file or a committed sink part file.
func NewPaddedReader(data []byte) *BufferReader {
	return NewBufferReader(StripPadding(data))
}

// CountRecords counts records in an encoded buffer.
func CountRecords(buf []byte) (int, error) {
	r := NewBufferReader(buf)
	n := 0
	for r.Next() {
		n++
	}
	return n, r.Err()
}

// pair is an in-memory KV pair used by sorters and buffers.
type pair struct {
	k, v []byte
}

// encodePairs encodes pairs into one buffer.
func encodePairs(ps []pair) []byte {
	var size int
	for _, p := range ps {
		size += RecordSize(p.k, p.v)
	}
	buf := make([]byte, 0, size)
	for _, p := range ps {
		buf = AppendRecord(buf, p.k, p.v)
	}
	return buf
}

// compareKV orders pairs by key then value (value tiebreak keeps sorts
// deterministic for tests).
func compareKV(a, b pair) int {
	if c := bytes.Compare(a.k, b.k); c != 0 {
		return c
	}
	return bytes.Compare(a.v, b.v)
}
