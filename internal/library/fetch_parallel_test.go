package library

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"tez/internal/event"
	"tez/internal/metrics"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

func dmFor(idx, task, attempt int, id shuffle.OutputID) event.DataMovement {
	return event.DataMovement{
		SrcVertex: "map", SrcTask: task, SrcAttempt: attempt,
		TargetInput: "map", TargetInputIndex: idx,
		Payload: plugin.MustEncode(DMInfo{ID: id}),
	}
}

func registerRun(t *testing.T, svc runtime.Services, node string, id shuffle.OutputID, key string) []byte {
	t.Helper()
	data := encodePairs([]pair{{[]byte(key), []byte("v")}})
	if err := svc.Shuffle.Register(node, id, [][]byte{data}); err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFetchParallelismResolution covers the knob precedence: per-task
// Services override, then shuffle.Config, then the library default.
func TestFetchParallelismResolution(t *testing.T) {
	svc := testServices(t)
	fs := newFetchSet(ctxFor(svc, runtime.Meta{}, "map", nil, 1))
	if got := fs.parallelism(); got != DefaultFetchParallelism {
		t.Fatalf("default parallelism = %d, want %d", got, DefaultFetchParallelism)
	}

	sh := shuffle.New(shuffle.Config{FetchParallelism: 7})
	svc2 := svc
	svc2.Shuffle = sh
	fs = newFetchSet(ctxFor(svc2, runtime.Meta{}, "map", nil, 1))
	if got := fs.parallelism(); got != 7 {
		t.Fatalf("cluster-config parallelism = %d, want 7", got)
	}

	svc2.FetchParallelism = 2
	fs = newFetchSet(ctxFor(svc2, runtime.Meta{}, "map", nil, 1))
	if got := fs.parallelism(); got != 2 {
		t.Fatalf("per-task parallelism = %d, want 2", got)
	}

	svc2.FetchParallelism = -3
	fs = newFetchSet(ctxFor(svc2, runtime.Meta{}, "map", nil, 1))
	if got := fs.parallelism(); got != 1 {
		t.Fatalf("negative parallelism = %d, want 1 (serial)", got)
	}
}

// TestFetchesRunInParallel proves the pool actually overlaps fetches:
// with 4 fetchers and 8 pending movements, 4 fetch completions must be
// observable simultaneously. Under the old serial pump this blocks after
// the first, so the test guards with a timeout.
func TestFetchesRunInParallel(t *testing.T) {
	svc := testServices(t)
	svc.Counters = metrics.NewCounters()
	const phys = 8
	ctx := ctxFor(svc, runtime.Meta{DAG: "d", Vertex: "red"}, "map", nil, phys)
	fs := newFetchSet(ctx)

	entered := make(chan struct{})
	barrier := make(chan struct{})
	fs.testHookFetched = func(event.DataMovement) {
		entered <- struct{}{}
		<-barrier
	}
	for i := 0; i < phys; i++ {
		id := shuffle.OutputID{DAG: "d", Vertex: "map", Task: i, Attempt: 0}
		registerRun(t, svc, "n1", id, fmt.Sprintf("k%d", i))
		if err := fs.handleEvent(dmFor(i, i, 0, id)); err != nil {
			t.Fatal(err)
		}
	}
	fs.start()
	for i := 0; i < DefaultFetchParallelism; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d concurrent fetches; pool is not parallel", i)
		}
	}
	close(barrier)
	for i := 0; i < phys-DefaultFetchParallelism; i++ {
		<-entered
	}
	runs, err := fs.wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != phys {
		t.Fatalf("got %d runs", len(runs))
	}
	if peak := svc.Counters.Get("SHUFFLE_FETCHES_INFLIGHT_PEAK"); peak < int64(DefaultFetchParallelism) {
		t.Fatalf("in-flight peak = %d, want >= %d", peak, DefaultFetchParallelism)
	}
	if got := svc.Counters.Get("SHUFFLE_FETCHES"); got != phys {
		t.Fatalf("SHUFFLE_FETCHES = %d, want %d", got, phys)
	}
	if left := svc.Counters.Get("SHUFFLE_FETCHES_INFLIGHT"); left != 0 {
		t.Fatalf("in-flight gauge did not return to zero: %d", left)
	}
	if err := fs.close(); err != nil {
		t.Fatal(err)
	}
}

// TestStaleFetchDoesNotClobberNewerAttempt is the focused regression for
// the missing stale-attempt guard: a fetch in flight across an
// InputFailed retraction must not repopulate runs with the retracted
// attempt's data (the old code stored unconditionally, so wait() could
// hand out retracted data before the replacement was fetched).
func TestStaleFetchDoesNotClobberNewerAttempt(t *testing.T) {
	svc := testServices(t)
	id0 := shuffle.OutputID{DAG: "d", Vertex: "map", Task: 0, Attempt: 0}
	id1 := shuffle.OutputID{DAG: "d", Vertex: "map", Task: 0, Attempt: 1}
	registerRun(t, svc, "n1", id0, "old")
	want := registerRun(t, svc, "n2", id1, "new")

	ctx := ctxFor(svc, runtime.Meta{DAG: "d", Vertex: "red"}, "map", nil, 1)
	fs := newFetchSet(ctx)
	fetched := make(chan int)
	release := make(chan struct{})
	fs.testHookFetched = func(dm event.DataMovement) {
		fetched <- dm.SrcAttempt
		<-release
	}

	if err := fs.handleEvent(dmFor(0, 0, 0, id0)); err != nil {
		t.Fatal(err)
	}
	fs.start()
	if at := <-fetched; at != 0 {
		t.Fatalf("first fetch was attempt %d", at)
	}
	// While attempt 0's data is fetched but not yet stored, the producer
	// is re-executed: retraction plus replacement movement arrive.
	if err := fs.handleEvent(event.InputFailed{TargetInputIndex: 0, SrcTask: 0, SrcAttempt: 0}); err != nil {
		t.Fatal(err)
	}
	if err := fs.handleEvent(dmFor(0, 0, 1, id1)); err != nil {
		t.Fatal(err)
	}
	release <- struct{}{} // let the stale attempt-0 result through

	// The replacement fetch runs next; until it completes nothing may be
	// stored for index 0 — the old bug stored attempt 0's data here.
	if at := <-fetched; at != 1 {
		t.Fatalf("second fetch was attempt %d", at)
	}
	_, stale := fs.storedRun(0, 0)
	if stale {
		t.Fatal("retracted attempt's data was stored")
	}
	release <- struct{}{}

	runs, err := fs.wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(runs[0], want) {
		t.Fatalf("runs[0] holds stale data: %q", runs[0])
	}
	if err := fs.close(); err != nil {
		t.Fatal(err)
	}
}

// TestStaleFetchErrorIsDropped: a fetch failing for a retracted attempt
// must not fail the consumer — the producer is already being re-executed.
func TestStaleFetchErrorIsDropped(t *testing.T) {
	svc := testServices(t)
	id0 := shuffle.OutputID{DAG: "d", Vertex: "map", Task: 0, Attempt: 0}
	id1 := shuffle.OutputID{DAG: "d", Vertex: "map", Task: 0, Attempt: 1}
	// Attempt 0's output is never registered, so fetching it fails with
	// ErrDataLost; attempt 1's is present.
	want := registerRun(t, svc, "n2", id1, "new")

	ctx := ctxFor(svc, runtime.Meta{DAG: "d", Vertex: "red"}, "map", nil, 1)
	fs := newFetchSet(ctx)
	fetched := make(chan int)
	release := make(chan struct{})
	fs.testHookFetched = func(dm event.DataMovement) {
		fetched <- dm.SrcAttempt
		<-release
	}

	if err := fs.handleEvent(dmFor(0, 0, 0, id0)); err != nil {
		t.Fatal(err)
	}
	fs.start()
	<-fetched // attempt 0 fetch has failed, result not yet reported
	if err := fs.handleEvent(event.InputFailed{TargetInputIndex: 0, SrcTask: 0, SrcAttempt: 0}); err != nil {
		t.Fatal(err)
	}
	if err := fs.handleEvent(dmFor(0, 0, 1, id1)); err != nil {
		t.Fatal(err)
	}
	release <- struct{}{}
	<-fetched
	release <- struct{}{}

	runs, err := fs.wait()
	if err != nil {
		t.Fatalf("stale fetch error failed the consumer: %v", err)
	}
	if !bytes.Equal(runs[0], want) {
		t.Fatalf("runs[0] = %q", runs[0])
	}
	if err := fs.close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelFetchStress drives a large fetch set with injected
// transient errors plus mid-flight retractions, under -race in CI.
func TestParallelFetchStress(t *testing.T) {
	fsys := testServices(t)
	sh := shuffle.New(shuffle.Config{TransientErrorRate: 0.3, Seed: 11})
	for i := 0; i < 3; i++ {
		sh.AddNode(fmt.Sprintf("n%d", i), "r0")
	}
	svc := fsys
	svc.Shuffle = sh
	svc.Counters = metrics.NewCounters()

	const phys = 40
	const retracted = 6
	ctx := ctxFor(svc, runtime.Meta{DAG: "d", Vertex: "red"}, "map", nil, phys)
	fs := newFetchSet(ctx)
	fs.fetcher.MaxRetries = 100 // absorb the 30% injected transient errors
	fs.fetcher.Backoff = time.Microsecond

	want := make([][]byte, phys)
	for i := 0; i < phys; i++ {
		id := shuffle.OutputID{DAG: "d", Vertex: "map", Task: i, Attempt: 0}
		want[i] = registerRun(t, svc, fmt.Sprintf("n%d", i%3), id, fmt.Sprintf("t%d-a0", i))
	}
	for i := 0; i < retracted; i++ {
		id1 := shuffle.OutputID{DAG: "d", Vertex: "map", Task: i, Attempt: 1}
		want[i] = registerRun(t, svc, fmt.Sprintf("n%d", (i+1)%3), id1, fmt.Sprintf("t%d-a1", i))
	}
	// Deliver the event stream in mailbox order (DM a0 … InputFailed a0,
	// DM a1) while the fetcher pool races against it, so retractions land
	// on queued, in-flight and already-stored fetches alike.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < phys; i++ {
			id := shuffle.OutputID{DAG: "d", Vertex: "map", Task: i, Attempt: 0}
			_ = fs.handleEvent(dmFor(i, i, 0, id))
		}
		for i := 0; i < retracted; i++ {
			id1 := shuffle.OutputID{DAG: "d", Vertex: "map", Task: i, Attempt: 1}
			_ = fs.handleEvent(event.InputFailed{TargetInputIndex: i, SrcTask: i, SrcAttempt: 0})
			_ = fs.handleEvent(dmFor(i, i, 1, id1))
		}
	}()
	fs.start()
	wg.Wait()

	runs, err := fs.wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if !bytes.Equal(runs[i], want[i]) {
			t.Fatalf("run %d = %q, want %q", i, runs[i], want[i])
		}
	}
	if svc.Counters.Get("SHUFFLE_FETCH_RETRIES") == 0 {
		t.Fatal("expected injected transient errors to be retried")
	}
	if err := fs.close(); err != nil {
		t.Fatal(err)
	}
}
