package library

import (
	"fmt"
	goruntime "runtime"
	"sort"
	"sync"
	"time"

	"tez/internal/event"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
	"tez/internal/timeline"
)

// Registered names of the shuffle transports.
const (
	OrderedPartitionedOutputName = "tez.ordered_partitioned_output"
	OrderedGroupedInputName      = "tez.ordered_grouped_input"
)

func init() {
	runtime.RegisterOutput(OrderedPartitionedOutputName, func() runtime.Output {
		return &OrderedPartitionedKVOutput{}
	})
	runtime.RegisterInput(OrderedGroupedInputName, func() runtime.Input {
		return &OrderedGroupedKVInput{}
	})
}

// DMInfo is the DataMovement payload of the built-in shuffle outputs: the
// "access URL" metadata of §3.3 — which registered output and partition to
// fetch, plus the block codec the bytes crossed the wire in (the fetched
// block is self-describing; there is no out-of-band codec negotiation).
type DMInfo struct {
	ID        shuffle.OutputID
	Partition int
	// Size is the registered (wire) size; RawSize the decoded record-
	// stream size. They are equal under the default "none" codec, where
	// Codec stays empty.
	Size    int64
	RawSize int64
	Codec   string
	// Spill / Final sequence pipelined publication: increment Spill of the
	// producing attempt's output stream, Final set on the last one. The
	// gob zero value (Spill 0, Final false) is what legacy single-shot
	// payloads decode to, and consumers treat the movement envelope
	// (SrcSpill/SrcMore) as authoritative, so old payloads keep working.
	Spill int
	Final bool
}

// VMStats is the VertexManagerEvent payload the shuffle outputs send to
// the consumer's ShuffleVertexManager: per-partition output sizes used for
// the automatic partition-cardinality estimate (Figure 6). Sizes are raw
// (pre-codec) so the estimate does not shift with the wire codec.
type VMStats struct {
	PartitionSizes []int64
}

// OrderedPartitionedConfig configures OrderedPartitionedKVOutput (and is
// reused, partitioner and codec fields only, by the unordered partitioned
// output). All additions must keep the gob zero value meaning "default"
// so old payloads stay decodable.
type OrderedPartitionedConfig struct {
	Partitioner PartitionerSpec
	// NoStats suppresses the VMStats event to the consumer vertex manager
	// (stats are sent by default; the field is inverted so the gob
	// zero-value default keeps them on).
	NoStats bool
	// Combiner names a RegisterCombineFunc pre-aggregator applied to each
	// sorted spill and to the final merge. Empty means none.
	Combiner string
	// Codec overrides the wire block codec for this edge ("none",
	// "flate", or a registered name); empty defers to the per-task /
	// cluster knobs.
	Codec string
	// SortBytes overrides the sort-spill budget in bytes: > 0 caps the
	// in-memory sort buffer, < 0 forces unbounded, 0 defers to the
	// SortMB knobs. Mainly for tests — the knobs speak megabytes.
	SortBytes int64
	// Pipelined publishes every sorted spill as it is produced — spill-
	// indexed registration plus an incremental DataMovement per partition
	// — so consumers fetch and merge while the producer is still sorting.
	// False defers to the per-task (runtime.Services.ShufflePipelined)
	// and cluster (shuffle.Config.Pipelined) knobs; any of the three
	// turns it on.
	Pipelined bool
}

// Data-plane defaults when no knob overrides them.
const (
	// DefaultFetchParallelism is the fetcher-pool size of a shuffle
	// consumer — the counterpart of real Tez's parallel fetcher threads.
	DefaultFetchParallelism = 4
	// DefaultMergeFactor bounds how many sorted runs the reduce side
	// merges at once; above it, arrived runs are pre-merged while
	// stragglers are still fetching.
	DefaultMergeFactor = 64
	// DefaultSortMB (0) leaves the map-side sort buffer unbounded: spills
	// only happen when a budget is configured.
	DefaultSortMB = 0
)

// OrderedPartitionedKVOutput is the map-side shuffle transport — the
// in-process analog of Tez's ExternalSorter + IFile. Records are appended
// to a contiguous byte arena with a compact index; the index is
// pointer-sorted by (partition, key, value); a configured memory budget
// (SortMB / SortBytes) spills sorted encoded runs, each optionally
// pre-aggregated by a registered combiner; Close merges spills with the
// in-memory remainder per partition (fanned out across a small worker
// pool), compresses each partition with the configured block codec,
// registers the partitions with the node's shuffle service, and announces
// them with one DataMovement event per partition plus a VMStats
// statistics event. The partition count comes from the edge manager via
// Context.PhysicalCount.
type OrderedPartitionedKVOutput struct {
	ctx         *runtime.Context
	cfg         OrderedPartitionedConfig
	partitioner Partitioner
	combine     CombineFunc
	codec       BlockCodec
	limit       int64 // sort budget in bytes; 0 = unbounded
	parts       int
	sb          *sortBuffer
	spills      [][][]byte // spills[s][p] = sorted encoded run (barrier mode)

	// Pipelined mode: instead of buffering spills for Close, each one is
	// registered under a spill-indexed OutputID and announced immediately.
	pipelined bool
	published int           // increments published so far
	rawTotals []int64       // cumulative raw bytes per partition (VMStats)
	deferred  []event.Event // increment events buffered when ctx.Emit is nil
}

// Initialize decodes configuration and prepares the sort buffer.
func (o *OrderedPartitionedKVOutput) Initialize(ctx *runtime.Context) error {
	o.ctx = ctx
	o.cfg = OrderedPartitionedConfig{}
	if len(ctx.Payload) > 0 {
		if err := plugin.Decode(ctx.Payload, &o.cfg); err != nil {
			return err
		}
	}
	p, err := o.cfg.Partitioner.New()
	if err != nil {
		return err
	}
	o.partitioner = p
	if o.combine, err = lookupCombiner(o.cfg.Combiner); err != nil {
		return err
	}
	if o.codec, err = ResolveBlockCodec(o.codecName()); err != nil {
		return err
	}
	if ctx.PhysicalCount <= 0 {
		return fmt.Errorf("library: ordered partitioned output with %d partitions", ctx.PhysicalCount)
	}
	o.parts = ctx.PhysicalCount
	o.limit = o.sortLimit()
	o.pipelined = o.cfg.Pipelined || ctx.Services.ShufflePipelined ||
		(ctx.Services.Shuffle != nil && ctx.Services.Shuffle.Pipelined())
	if o.pipelined {
		o.rawTotals = make([]int64, o.parts)
	}
	o.published = 0
	o.deferred = nil
	o.sb = sortBufferPool.Get().(*sortBuffer)
	return nil
}

// codecName resolves the wire codec: edge payload, then the per-task AM
// knob, then the cluster-wide shuffle default, then "none".
func (o *OrderedPartitionedKVOutput) codecName() string {
	name := o.cfg.Codec
	if name == "" {
		name = o.ctx.Services.Codec
	}
	if name == "" && o.ctx.Services.Shuffle != nil {
		name = o.ctx.Services.Shuffle.Codec()
	}
	return name
}

// sortLimit resolves the sort budget in bytes: edge payload SortBytes,
// then the per-task AM SortMB, then the cluster-wide shuffle default.
// Zero everywhere (the default) means no budget — sort wholly in memory.
func (o *OrderedPartitionedKVOutput) sortLimit() int64 {
	if o.cfg.SortBytes != 0 {
		if o.cfg.SortBytes < 0 {
			return 0
		}
		return o.cfg.SortBytes
	}
	mb := o.ctx.Services.SortMB
	if mb == 0 && o.ctx.Services.Shuffle != nil {
		mb = o.ctx.Services.Shuffle.SortMB()
	}
	if mb <= 0 {
		return 0
	}
	return int64(mb) << 20
}

// Writer returns a runtime.KVWriter appending into the arena.
func (o *OrderedPartitionedKVOutput) Writer() (any, error) {
	return kvWriterFunc(o.write), nil
}

func (o *OrderedPartitionedKVOutput) write(k, v []byte) error {
	o.sb.add(o.partitioner.Partition(k, o.parts), k, v)
	if o.limit > 0 && o.sb.used() >= o.limit {
		return o.spill()
	}
	return nil
}

// spill sorts the arena and encodes it into one sorted run per partition
// (through the combiner when configured), then resets the arena keeping
// its capacity — the ExternalSorter spill, minus the disk. In pipelined
// mode the spill is published immediately instead of buffered.
func (o *OrderedPartitionedKVOutput) spill() error {
	if o.pipelined {
		return o.spillPipelined()
	}
	ctr := o.ctx.Services.Counters
	start := time.Now()
	sortStart := start
	o.sb.sort()
	sortNS := time.Since(sortStart).Nanoseconds()
	runs := make([][]byte, o.parts)
	for p := 0; p < o.parts; p++ {
		seg := o.sb.partSpan(p)
		if len(seg) == 0 {
			continue
		}
		buf, err := encodeStream(&refsReader{sb: o.sb, refs: seg}, o.combine, getRunBuf(), ctr)
		if err != nil {
			return err
		}
		runs[p] = buf
	}
	records := int64(len(o.sb.refs))
	o.spills = append(o.spills, runs)
	o.sb.reset()
	if ctr != nil {
		ctr.Add("SHUFFLE_SPILLS", 1)
		ctr.Add("SHUFFLE_SORT_TIME_NS", sortNS)
	}
	o.recordSpan(timeline.ShuffleSpill, o.ctx.Name, time.Since(start), records)
	return nil
}

// spillPipelined publishes the current arena as increment o.published:
// register under the spill-indexed id, announce to consumers right away
// (through ctx.Emit when the runner wired one; buffered for Close
// otherwise), and die on an injected spill fault — the mid-stream death
// the AM's retraction path exists for.
func (o *OrderedPartitionedKVOutput) spillPipelined() error {
	spillIdx := o.published
	events, err := o.publishIncrement(false)
	if err != nil {
		return err
	}
	if o.ctx.Emit != nil {
		for _, ev := range events {
			o.ctx.Emit(ev)
		}
	} else {
		o.deferred = append(o.deferred, events...)
	}
	if svc := o.ctx.Services.Shuffle; svc != nil {
		site := shuffle.OutputID{
			DAG:     o.ctx.Meta.DAG,
			Vertex:  o.ctx.Meta.Vertex,
			Name:    o.ctx.Name,
			Task:    o.ctx.Meta.Task,
			Attempt: o.ctx.Meta.Attempt,
			Spill:   spillIdx,
		}.String()
		if svc.SpillFault(site) {
			return fmt.Errorf("library: injected spill fault after increment %d of %s", spillIdx, o.ctx.Name)
		}
	}
	return nil
}

// publishIncrement sorts and encodes the arena's current contents as one
// increment: every partition (empty ones included, so each partition's
// increment stream stays densely numbered 0..total-1) is encoded, codec'd,
// registered under the spill-indexed OutputID, and announced with a
// DataMovement whose SrcSpill/SrcMore envelope sequences the stream.
// Cumulative raw sizes accumulate into rawTotals so the final VMStats
// reports the same totals a barrier run would (combiner-free case).
func (o *OrderedPartitionedKVOutput) publishIncrement(final bool) ([]event.Event, error) {
	ctr := o.ctx.Services.Counters
	start := time.Now()
	o.sb.sort()
	sortNS := time.Since(start).Nanoseconds()
	if ctr != nil {
		ctr.Add("SHUFFLE_SORT_TIME_NS", sortNS)
	}
	records := int64(len(o.sb.refs))
	wire := make([][]byte, o.parts)
	rawSizes := make([]int64, o.parts)
	for p := 0; p < o.parts; p++ {
		buf, err := encodeStream(&refsReader{sb: o.sb, refs: o.sb.partSpan(p)}, o.combine, getRunBuf(), ctr)
		if err != nil {
			return nil, err
		}
		rawSizes[p] = int64(len(buf))
		o.rawTotals[p] += int64(len(buf))
		if o.codec == nil {
			wire[p] = buf
			continue
		}
		wire[p], err = encodeBlock(o.codec, buf)
		if err != nil {
			return nil, err
		}
		putRunBuf(buf)
	}
	id := shuffle.OutputID{
		DAG:     o.ctx.Meta.DAG,
		Vertex:  o.ctx.Meta.Vertex,
		Name:    o.ctx.Name,
		Task:    o.ctx.Meta.Task,
		Attempt: o.ctx.Meta.Attempt,
		Spill:   o.published,
	}
	if err := o.ctx.Services.Shuffle.Register(o.ctx.Services.Node, id, wire, o.ctx.Services.Token); err != nil {
		return nil, err
	}
	codecName := ""
	if o.codec != nil {
		codecName = o.codec.Name()
	}
	events := make([]event.Event, 0, o.parts)
	for i := 0; i < o.parts; i++ {
		events = append(events, event.DataMovement{
			SrcVertex:      o.ctx.Meta.Vertex,
			SrcTask:        o.ctx.Meta.Task,
			SrcAttempt:     o.ctx.Meta.Attempt,
			SrcOutputIndex: i,
			SrcSpill:       o.published,
			SrcMore:        !final,
			TargetVertex:   o.ctx.Name,
			Payload: plugin.MustEncode(DMInfo{
				ID:        id,
				Partition: i,
				Size:      int64(len(wire[i])),
				RawSize:   rawSizes[i],
				Codec:     codecName,
				Spill:     o.published,
				Final:     final,
			}),
		})
		putRunBuf(wire[i]) // Register deep-copied the partitions
		wire[i] = nil
	}
	if ctr != nil && !final {
		ctr.Add("SHUFFLE_SPILLS", 1)
	}
	o.recordSpan(timeline.ShuffleSpill, fmt.Sprintf("%s s%d", o.ctx.Name, o.published), time.Since(start), records)
	o.published++
	o.sb.reset()
	return events, nil
}

// recordSpan journals one data-plane span for this attempt (no-op without
// a journal).
func (o *OrderedPartitionedKVOutput) recordSpan(t timeline.Type, info string, dur time.Duration, val int64) {
	o.ctx.Services.Timeline.Record(timeline.Event{
		Type:    t,
		DAG:     o.ctx.Meta.DAG,
		Vertex:  o.ctx.Meta.Vertex,
		Task:    o.ctx.Meta.Task,
		Attempt: o.ctx.Meta.Attempt,
		Node:    o.ctx.Services.Node,
		Info:    info,
		Dur:     dur,
		Val:     val,
	})
}

// Close sorts the remainder, merges it with any spills per partition
// (combining again at the merge), applies the wire codec, registers and
// announces the partitions. Per-partition finalisation fans out across a
// small worker pool — partitions are independent, so the output bytes do
// not depend on worker interleaving.
func (o *OrderedPartitionedKVOutput) Close() ([]event.Event, error) {
	if o.pipelined {
		return o.closePipelined()
	}
	ctr := o.ctx.Services.Counters
	sortStart := time.Now()
	o.sb.sort()
	if ctr != nil {
		ctr.Add("SHUFFLE_SORT_TIME_NS", time.Since(sortStart).Nanoseconds())
	}

	var (
		raw      = make([][]byte, o.parts) // nil once handed to wire/pool
		wire     = make([][]byte, o.parts)
		rawSizes = make([]int64, o.parts)
		errMu    sync.Mutex
		firstErr error
	)
	mergeStart := time.Now()
	workers := goruntime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	if workers > o.parts {
		workers = o.parts
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				if err := o.finalizePartition(p, raw, wire, rawSizes); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for p := 0; p < o.parts; p++ {
		work <- p
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if len(o.spills) > 0 {
		if ctr != nil {
			ctr.Add("SHUFFLE_MERGE_TIME_NS", time.Since(mergeStart).Nanoseconds())
		}
		var totalRaw int64
		for _, s := range rawSizes {
			totalRaw += s
		}
		o.recordSpan(timeline.ShuffleMerge, "final "+o.ctx.Name, time.Since(mergeStart), totalRaw)
	}

	id := shuffle.OutputID{
		DAG:     o.ctx.Meta.DAG,
		Vertex:  o.ctx.Meta.Vertex,
		Name:    o.ctx.Name,
		Task:    o.ctx.Meta.Task,
		Attempt: o.ctx.Meta.Attempt,
	}
	if err := o.ctx.Services.Shuffle.Register(o.ctx.Services.Node, id, wire, o.ctx.Services.Token); err != nil {
		return nil, err
	}
	codecName := ""
	if o.codec != nil {
		codecName = o.codec.Name()
	}
	events := make([]event.Event, 0, o.parts+1)
	for i := 0; i < o.parts; i++ {
		events = append(events, event.DataMovement{
			SrcVertex:      o.ctx.Meta.Vertex,
			SrcTask:        o.ctx.Meta.Task,
			SrcAttempt:     o.ctx.Meta.Attempt,
			SrcOutputIndex: i,
			TargetVertex:   o.ctx.Name,
			Payload: plugin.MustEncode(DMInfo{
				ID:        id,
				Partition: i,
				Size:      int64(len(wire[i])),
				RawSize:   rawSizes[i],
				Codec:     codecName,
			}),
		})
	}
	if !o.cfg.NoStats {
		events = append(events, event.VertexManagerEvent{
			TargetVertex: o.ctx.Name,
			SrcVertex:    o.ctx.Meta.Vertex,
			SrcTask:      o.ctx.Meta.Task,
			Payload:      plugin.MustEncode(VMStats{PartitionSizes: rawSizes}),
		})
	}
	// Register copied the partitions, so every producer-side buffer is
	// recyclable from here.
	for i := range wire {
		putRunBuf(wire[i])
		wire[i] = nil
	}
	o.sb.reset()
	sortBufferPool.Put(o.sb)
	o.sb = nil
	o.spills = nil
	return events, nil
}

// closePipelined publishes the in-memory remainder as the final increment
// (SrcMore false — its SrcSpill+1 tells consumers the stream's total) and
// the VMStats event carrying cumulative raw sizes, so auto-parallelism
// sees the same totals as a barrier run. There is no producer-side merge:
// consumers fold the increments into their MergeFactor-bounded merge.
func (o *OrderedPartitionedKVOutput) closePipelined() ([]event.Event, error) {
	events, err := o.publishIncrement(true)
	if err != nil {
		return nil, err
	}
	if !o.cfg.NoStats {
		events = append(events, event.VertexManagerEvent{
			TargetVertex: o.ctx.Name,
			SrcVertex:    o.ctx.Meta.Vertex,
			SrcTask:      o.ctx.Meta.Task,
			Payload:      plugin.MustEncode(VMStats{PartitionSizes: o.rawTotals}),
		})
	}
	if len(o.deferred) > 0 {
		// Increments accumulated while no Emit hook was wired (direct
		// harness drives) ride out with Close, in publication order.
		events = append(o.deferred, events...)
		o.deferred = nil
	}
	o.sb.reset()
	sortBufferPool.Put(o.sb)
	o.sb = nil
	return events, nil
}

// finalizePartition produces one partition's final raw and wire buffers:
// encode the sorted in-memory segment, merge it with the partition's
// spill runs (combining), then run the block codec.
func (o *OrderedPartitionedKVOutput) finalizePartition(p int, raw, wire [][]byte, rawSizes []int64) error {
	ctr := o.ctx.Services.Counters
	seg := o.sb.partSpan(p)
	var buf []byte
	var err error
	if len(o.spills) == 0 {
		buf, err = encodeStream(&refsReader{sb: o.sb, refs: seg}, o.combine, getRunBuf(), ctr)
		if err != nil {
			return err
		}
	} else {
		runs := make([][]byte, 0, len(o.spills)+1)
		for _, sp := range o.spills {
			if len(sp[p]) > 0 {
				runs = append(runs, sp[p])
			}
		}
		var mem []byte
		if len(seg) > 0 {
			mem, err = encodeStream(&refsReader{sb: o.sb, refs: seg}, o.combine, getRunBuf(), ctr)
			if err != nil {
				return err
			}
			runs = append(runs, mem)
		}
		buf, err = mergeEncodedRuns(runs, o.combine, getRunBuf(), ctr)
		if err != nil {
			return err
		}
		for _, sp := range o.spills {
			putRunBuf(sp[p])
			sp[p] = nil
		}
		putRunBuf(mem)
	}
	raw[p] = buf
	rawSizes[p] = int64(len(buf))
	if o.codec == nil {
		wire[p] = buf
		return nil
	}
	wire[p], err = encodeBlock(o.codec, buf)
	if err != nil {
		return err
	}
	putRunBuf(raw[p])
	raw[p] = nil
	return nil
}

// kvWriterFunc adapts a function to runtime.KVWriter.
type kvWriterFunc func(k, v []byte) error

func (f kvWriterFunc) Write(k, v []byte) error { return f(k, v) }

// fetchSet is the shared consumer-side machinery of the shuffle inputs:
// it tracks expected physical inputs, accepts DataMovement events,
// fetches their data on a pool of parallel fetcher goroutines
// (overlapping with producer completion and with each other — the
// latency-hiding overlap of §3.4), honours InputFailed retractions, and
// surfaces producer data loss as a runtime.InputReadError.
//
// Two condition variables split the wakeups by audience: fetchers sleep
// on work (new movements, stash releases, shutdown), the single reader
// sleeps on done (stored runs, failure, shutdown) — storing a run no
// longer wakes every fetcher in the pool.
type fetchSet struct {
	ctx     *runtime.Context
	fetcher *shuffle.Fetcher // shared by all fetcher goroutines

	mu   sync.Mutex
	work *sync.Cond
	done *sync.Cond
	// states holds the per-physical-input increment stream of the
	// currently expected producer attempt. A legacy single-shot producer
	// is the one-increment special case (total 1 announced by its only
	// movement); a pipelined producer grows stored/merged increment by
	// increment until the final announcement fixes total.
	states    map[int]*inputState
	expect    map[int]int          // physical input index -> latest announced attempt
	inflight  map[[2]int]bool      // (input index, spill) currently being fetched
	premerged [][]byte             // intermediate merge outputs (ordered path)
	// pending is a FIFO consumed through a head cursor (compacted when
	// the dead prefix dominates) — the previous re-slice-on-every-scan
	// made each wake O(queue) and the whole drain O(n²). Movements whose
	// (index, spill) is in flight are parked in stash and re-queued when
	// that fetch completes, so scans never revisit them.
	pending  []event.DataMovement
	head     int
	stash    map[[2]int][]event.DataMovement
	failure  *runtime.InputReadError
	stopped  bool
	fetchers sync.WaitGroup
	started  bool
	quit     chan struct{}

	// testHookFetched, when set, is called by a fetcher goroutine after a
	// fetch completes and before its result is stored — a deterministic
	// interleaving seam for retraction-race tests. Nil in production.
	testHookFetched func(event.DataMovement)
}

// inputState is one physical input's increment stream from its current
// producer attempt.
type inputState struct {
	attempt int
	srcTask int
	total   int            // announced increment count; 0 until the final arrives
	stored  map[int][]byte // spill index -> fetched sorted run
	merged  map[int]bool   // spill indexes consumed into an intermediate merge
}

// arrived reports how many of the stream's increments are accounted for
// (fetched or already folded into a merge).
func (st *inputState) arrived() int { return len(st.stored) + len(st.merged) }

// complete reports whether the whole stream is here: the final increment
// has been announced and every increment arrived.
func (st *inputState) complete() bool { return st.total > 0 && st.arrived() >= st.total }

func newFetchSet(ctx *runtime.Context) *fetchSet {
	fs := &fetchSet{
		ctx:      ctx,
		fetcher:  &shuffle.Fetcher{Service: ctx.Services.Shuffle, Token: ctx.Services.Token},
		states:   make(map[int]*inputState),
		expect:   make(map[int]int),
		inflight: make(map[[2]int]bool),
		stash:    make(map[[2]int][]event.DataMovement),
		quit:     make(chan struct{}),
	}
	fs.work = sync.NewCond(&fs.mu)
	fs.done = sync.NewCond(&fs.mu)
	return fs
}

// parallelism resolves the fetcher-pool size: per-task override from the
// AM config (via Services), then the cluster-wide shuffle.Config default,
// then DefaultFetchParallelism. Values below 1 mean serial.
func (f *fetchSet) parallelism() int {
	n := f.ctx.Services.FetchParallelism
	if n == 0 && f.ctx.Services.Shuffle != nil {
		n = f.ctx.Services.Shuffle.FetchParallelism()
	}
	if n == 0 {
		n = DefaultFetchParallelism
	}
	if n < 1 {
		n = 1
	}
	return n
}

// mergeFactor resolves the reduce-side merge width the same way: per-task
// AM knob, cluster-wide shuffle default, then DefaultMergeFactor.
// Negative disables intermediate merges (unbounded width); values below 2
// are meaningless and clamp to 2.
func (f *fetchSet) mergeFactor() int {
	n := f.ctx.Services.MergeFactor
	if n == 0 && f.ctx.Services.Shuffle != nil {
		n = f.ctx.Services.Shuffle.MergeFactor()
	}
	if n == 0 {
		n = DefaultMergeFactor
	}
	if n < 0 {
		return 0
	}
	if n < 2 {
		n = 2
	}
	return n
}

// handleEvent records a DataMovement increment for fetching or an
// InputFailed retraction. Attempt tracking is upgrade-only: a movement
// from an attempt older than the latest announced one is dropped, and a
// newer attempt's first movement discards the older attempt's stream.
func (f *fetchSet) handleEvent(ev event.Event) error {
	switch e := ev.(type) {
	case event.DataMovement:
		f.mu.Lock()
		if e.SrcSpill < 0 {
			f.mu.Unlock()
			return fmt.Errorf("library: input %s: negative spill index %d from task %d", f.ctx.Name, e.SrcSpill, e.SrcTask)
		}
		idx := e.TargetInputIndex
		if cur, ok := f.expect[idx]; ok && e.SrcAttempt < cur {
			f.mu.Unlock()
			return nil // stale announcement of a superseded attempt
		} else if !ok || e.SrcAttempt > cur {
			f.retractLocked(idx, e.SrcTask)
			f.expect[idx] = e.SrcAttempt
		}
		st := f.states[idx]
		if st == nil {
			st = &inputState{
				attempt: e.SrcAttempt,
				srcTask: e.SrcTask,
				stored:  make(map[int][]byte),
				merged:  make(map[int]bool),
			}
			f.states[idx] = st
		}
		if !e.SrcMore && st.total == 0 {
			st.total = e.SrcSpill + 1
		}
		f.pending = append(f.pending, e)
		f.work.Signal()
		f.mu.Unlock()
	case event.InputFailed:
		f.mu.Lock()
		if at, ok := f.expect[e.TargetInputIndex]; ok && at == e.SrcAttempt {
			delete(f.expect, e.TargetInputIndex)
			f.retractLocked(e.TargetInputIndex, e.SrcTask)
		}
		f.mu.Unlock()
	}
	return nil
}

// retractLocked drops the stream stored for idx (if any). A stream some
// of whose increments were already folded into an intermediate merge
// cannot be separated back out; surface the loss so this consumer attempt
// is re-run against the replacement data.
func (f *fetchSet) retractLocked(idx, srcTask int) {
	st, ok := f.states[idx]
	if !ok {
		return
	}
	if len(st.merged) > 0 && f.failure == nil {
		f.failure = &runtime.InputReadError{
			InputName:  f.ctx.Name,
			SrcVertex:  f.ctx.Name,
			SrcTask:    srcTask,
			SrcAttempt: st.attempt,
			Err:        fmt.Errorf("library: input retracted after merge"),
		}
		f.work.Broadcast()
		f.done.Broadcast()
	}
	delete(f.states, idx)
}

// start launches the fetcher pool. Fetches overlap with remaining
// producer executions and with each other (the latency-hiding overlap of
// §3.4; a reducer with many remote producers pays max, not sum, of the
// concurrent transfer delays).
func (f *fetchSet) start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	n := f.parallelism()
	f.fetchers.Add(n)
	for i := 0; i < n; i++ {
		go f.fetchLoop()
	}
	// Watch for an attempt kill so blocked waiters wake up; exits with the
	// fetch set so reused containers don't accumulate watchers.
	go func() {
		select {
		case <-f.ctx.Stop:
			f.mu.Lock()
			f.stopped = true
			f.work.Broadcast()
			f.done.Broadcast()
			f.mu.Unlock()
		case <-f.quit:
		}
	}()
}

// nextLocked pops the next fetchable movement through the head cursor:
// retracted or already-satisfied entries are dropped, and an index
// already being fetched is parked in stash so two fetchers never race on
// the same physical input (in-flight dedup) and later scans skip it.
func (f *fetchSet) nextLocked() (event.DataMovement, bool) {
	for f.head < len(f.pending) {
		dm := f.pending[f.head]
		f.head++
		if f.head >= 64 && f.head*2 >= len(f.pending) {
			n := copy(f.pending, f.pending[f.head:])
			clearTail := f.pending[n:]
			for i := range clearTail {
				clearTail[i] = event.DataMovement{}
			}
			f.pending = f.pending[:n]
			f.head = 0
		}
		idx := dm.TargetInputIndex
		if at, ok := f.expect[idx]; !ok || at != dm.SrcAttempt {
			// Retracted while queued; the replacement has (or will get)
			// its own DataMovement.
			continue
		}
		st := f.states[idx]
		if st == nil || st.attempt != dm.SrcAttempt {
			continue // stream discarded while queued
		}
		if _, ok := st.stored[dm.SrcSpill]; ok {
			continue // duplicate announcement of a stored increment
		}
		if st.merged[dm.SrcSpill] {
			continue // already consumed into an intermediate merge
		}
		key := [2]int{idx, dm.SrcSpill}
		if f.inflight[key] {
			f.stash[key] = append(f.stash[key], dm)
			continue
		}
		return dm, true
	}
	return event.DataMovement{}, false
}

// fetchLoop is one fetcher goroutine. The pool stays alive until close or
// failure so that replacement movements after an InputFailed retraction
// are still fetched.
func (f *fetchSet) fetchLoop() {
	defer f.fetchers.Done()
	for {
		f.mu.Lock()
		dm, ok := f.nextLocked()
		for !ok && f.failure == nil && !f.stopped {
			f.work.Wait()
			dm, ok = f.nextLocked()
		}
		if f.failure != nil || f.stopped {
			f.mu.Unlock()
			return
		}
		idx := dm.TargetInputIndex
		key := [2]int{idx, dm.SrcSpill}
		f.inflight[key] = true
		f.mu.Unlock()

		data, wireLen, err := f.fetchOne(dm)

		f.mu.Lock()
		delete(f.inflight, key)
		if s, ok := f.stash[key]; ok {
			delete(f.stash, key)
			f.pending = append(f.pending, s...)
			f.work.Signal()
		}
		// Only store if this movement is still the expected attempt: an
		// InputFailed retraction may have raced with the fetch, and a
		// stale in-flight fetch must not clobber (or fail) the newer
		// attempt that replaced it.
		st := f.states[idx]
		at, live := f.expect[idx]
		current := live && at == dm.SrcAttempt && st != nil && st.attempt == dm.SrcAttempt
		if current {
			if _, ok := st.stored[dm.SrcSpill]; ok || st.merged[dm.SrcSpill] {
				current = false // duplicate of an already-accounted increment
			}
		}
		switch {
		case err != nil && current:
			if f.failure == nil {
				f.failure = &runtime.InputReadError{
					InputName:  f.ctx.Name,
					SrcVertex:  dm.SrcVertex,
					SrcTask:    dm.SrcTask,
					SrcAttempt: dm.SrcAttempt,
					Err:        err,
				}
			}
			f.work.Broadcast()
			f.done.Broadcast()
		case err == nil && current:
			st.stored[dm.SrcSpill] = data
			// Byte counters accumulate here, in the store-success branch,
			// so a stale or duplicate transfer never inflates them — they
			// stay an exact per-increment account of what the merge
			// consumed, across any number of increments per source.
			if ctr := f.ctx.Services.Counters; ctr != nil {
				ctr.Add("SHUFFLE_BYTES", int64(wireLen))
				ctr.Add("SHUFFLE_BYTES_WIRE", int64(wireLen))
				ctr.Add("SHUFFLE_BYTES_RAW", int64(len(data)))
				ctr.Add("SHUFFLE_INCREMENTS", 1)
			}
			f.done.Broadcast()
		}
		// A stale fetch result — success or error — is dropped: the
		// producer attempt was retracted and is being re-executed.
		f.mu.Unlock()
	}
}

// fetchOne decodes and fetches a single movement, maintaining the
// fetch-path metrics (in-flight gauge + peak, per-fetch latency, retry
// counts) and decoding the wire block codec. It returns the decoded data
// and the wire length; byte counters are charged by the caller only when
// the result is actually stored, so retracted and duplicate transfers
// don't count.
func (f *fetchSet) fetchOne(dm event.DataMovement) ([]byte, int, error) {
	var info DMInfo
	if err := plugin.Decode(dm.Payload, &info); err != nil {
		return nil, 0, err
	}
	ctr := f.ctx.Services.Counters
	if ctr != nil {
		cur := ctr.Add("SHUFFLE_FETCHES_INFLIGHT", 1)
		ctr.SetMax("SHUFFLE_FETCHES_INFLIGHT_PEAK", cur)
	}
	start := time.Now()
	data, retries, err := f.fetcher.FetchCounted(info.ID, info.Partition, f.ctx.Services.Node)
	if f.testHookFetched != nil {
		f.testHookFetched(dm)
	}
	wireLen := len(data)
	if err == nil && info.Codec != "" {
		data, err = decodeBlock(info.Codec, data, int(info.RawSize))
	}
	if ctr != nil {
		ctr.Add("SHUFFLE_FETCHES_INFLIGHT", -1)
		ctr.Add("SHUFFLE_FETCHES", 1)
		ctr.Add("SHUFFLE_FETCH_TIME_NS", time.Since(start).Nanoseconds())
		if retries > 0 {
			ctr.Add("SHUFFLE_FETCH_RETRIES", int64(retries))
		}
	}
	return data, wireLen, err
}

// completeLocked reports whether every physical input's increment stream
// has fully arrived.
func (f *fetchSet) completeLocked() bool {
	if len(f.states) < f.ctx.PhysicalCount {
		return false
	}
	for i := 0; i < f.ctx.PhysicalCount; i++ {
		st, ok := f.states[i]
		if !ok || !st.complete() {
			return false
		}
	}
	return true
}

// storedCountLocked counts runs fetched but not yet folded into an
// intermediate merge.
func (f *fetchSet) storedCountLocked() int {
	n := 0
	for _, st := range f.states {
		n += len(st.stored)
	}
	return n
}

// flattenStoredLocked returns every stored run ordered by (input index,
// spill index) — a canonical order so downstream bytes don't depend on
// map iteration.
func (f *fetchSet) flattenStoredLocked() [][]byte {
	out := make([][]byte, 0, f.storedCountLocked())
	for i := 0; i < f.ctx.PhysicalCount; i++ {
		st, ok := f.states[i]
		if !ok {
			continue
		}
		spills := make([]int, 0, len(st.stored))
		for s := range st.stored {
			spills = append(spills, s)
		}
		sort.Ints(spills)
		for _, s := range spills {
			out = append(out, st.stored[s])
		}
	}
	return out
}

// storedRun returns the fetched run for (input index, spill) — a test
// accessor into the stream state.
func (f *fetchSet) storedRun(idx, spill int) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.states[idx]
	if !ok {
		return nil, false
	}
	r, ok := st.stored[spill]
	return r, ok
}

// wait blocks until every physical input's stream is fetched, an input
// failed, or the attempt is killed. It returns the fetched runs ordered
// by (physical input index, spill index) — exactly one run per input for
// legacy single-shot producers.
func (f *fetchSet) wait() ([][]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.completeLocked() && f.failure == nil && !f.stopped {
		f.done.Wait()
	}
	if f.failure != nil {
		return nil, f.failure
	}
	if f.stopped && !f.completeLocked() {
		return nil, fmt.Errorf("library: input %s: attempt killed while fetching", f.ctx.Name)
	}
	return f.flattenStoredLocked(), nil
}

// collectMerged is the ordered path's wait(): while stragglers are still
// fetching, every time `factor` unmerged runs have arrived they are
// k-way merged into one intermediate run outside the lock (merge/fetch
// overlap), and the final result is bounded to at most `factor` runs for
// the reader's heap. factor 0 disables intermediate merging. The merge is
// content-deterministic — runs are merged by (key, value) order — so the
// output bytes do not depend on arrival order or batch shape.
func (f *fetchSet) collectMerged(factor int) ([][]byte, error) {
	f.mu.Lock()
	for {
		if f.failure != nil {
			f.mu.Unlock()
			return nil, f.failure
		}
		if f.completeLocked() {
			break
		}
		if f.stopped {
			f.mu.Unlock()
			return nil, fmt.Errorf("library: input %s: attempt killed while fetching", f.ctx.Name)
		}
		if factor >= 2 && f.storedCountLocked() >= factor {
			batch := f.takeMergeBatchLocked(factor)
			f.mu.Unlock()
			m, err := f.mergeRuns(batch)
			f.mu.Lock()
			if err != nil {
				f.mu.Unlock()
				return nil, err
			}
			f.premerged = append(f.premerged, m)
			continue
		}
		f.done.Wait()
	}
	stored := f.flattenStoredLocked()
	runs := make([][]byte, 0, len(f.premerged)+len(stored))
	runs = append(runs, f.premerged...)
	runs = append(runs, stored...)
	f.mu.Unlock()
	for factor >= 2 && len(runs) > factor {
		m, err := f.mergeRuns(runs[:factor])
		if err != nil {
			return nil, err
		}
		runs = append([][]byte{m}, runs[factor:]...)
	}
	return runs, nil
}

// takeMergeBatchLocked removes `factor` stored runs (ascending (input,
// spill), for tidy accounting — any choice yields the same final bytes)
// and marks them merged.
func (f *fetchSet) takeMergeBatchLocked(factor int) [][]byte {
	keys := make([][2]int, 0, f.storedCountLocked())
	for i, st := range f.states {
		for s := range st.stored {
			keys = append(keys, [2]int{i, s})
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	keys = keys[:factor]
	batch := make([][]byte, 0, factor)
	for _, k := range keys {
		st := f.states[k[0]]
		batch = append(batch, st.stored[k[1]])
		st.merged[k[1]] = true
		delete(st.stored, k[1])
	}
	return batch
}

// mergeRuns k-way merges sorted runs into one (no combiner on the reduce
// side), charging merge time and journalling the span.
func (f *fetchSet) mergeRuns(runs [][]byte) ([]byte, error) {
	start := time.Now()
	var total int64
	for _, r := range runs {
		total += int64(len(r))
	}
	out, err := mergeEncodedRuns(runs, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	if ctr := f.ctx.Services.Counters; ctr != nil {
		ctr.Add("SHUFFLE_MERGE_TIME_NS", time.Since(start).Nanoseconds())
	}
	f.ctx.Services.Timeline.Record(timeline.Event{
		Type:    timeline.ShuffleMerge,
		DAG:     f.ctx.Meta.DAG,
		Vertex:  f.ctx.Meta.Vertex,
		Task:    f.ctx.Meta.Task,
		Attempt: f.ctx.Meta.Attempt,
		Node:    f.ctx.Services.Node,
		Info:    "reduce " + f.ctx.Name,
		Dur:     time.Since(start),
		Val:     total,
	})
	return out, nil
}

func (f *fetchSet) close() error {
	f.mu.Lock()
	f.stopped = true
	started := f.started
	f.work.Broadcast()
	f.done.Broadcast()
	f.mu.Unlock()
	if started {
		close(f.quit)
		f.fetchers.Wait()
	}
	return nil
}

// OrderedGroupedKVInput is the reduce-side shuffle transport: it fetches
// every expected physical input (one per producer task per owned
// partition), k-way merges the sorted runs — pre-merging arrived runs
// while stragglers are still in flight when the count exceeds the merge
// factor — and exposes a runtime.GroupedKVReader of keys with grouped
// values. Keys and values are served zero-copy out of the fetched runs;
// they are valid until the next call to Next.
type OrderedGroupedKVInput struct {
	fs *fetchSet
}

// Initialize prepares the fetch machinery.
func (in *OrderedGroupedKVInput) Initialize(ctx *runtime.Context) error {
	in.fs = newFetchSet(ctx)
	return nil
}

// HandleEvent accepts DataMovement / InputFailed events.
func (in *OrderedGroupedKVInput) HandleEvent(ev event.Event) error { return in.fs.handleEvent(ev) }

// Start begins fetching as soon as movements arrive.
func (in *OrderedGroupedKVInput) Start() error { in.fs.start(); return nil }

// Reader blocks for all inputs (merging early arrivals along the way),
// then returns a GroupedKVReader over at most MergeFactor runs.
func (in *OrderedGroupedKVInput) Reader() (any, error) {
	runs, err := in.fs.collectMerged(in.fs.mergeFactor())
	if err != nil {
		return nil, err
	}
	return newGroupedReader(newMergeReader(runs)), nil
}

// Close stops fetchers.
func (in *OrderedGroupedKVInput) Close() error { return in.fs.close() }
