package library

import (
	"fmt"
	"sync"

	"tez/internal/event"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

// Registered names of the shuffle transports.
const (
	OrderedPartitionedOutputName = "tez.ordered_partitioned_output"
	OrderedGroupedInputName      = "tez.ordered_grouped_input"
)

func init() {
	runtime.RegisterOutput(OrderedPartitionedOutputName, func() runtime.Output {
		return &OrderedPartitionedKVOutput{}
	})
	runtime.RegisterInput(OrderedGroupedInputName, func() runtime.Input {
		return &OrderedGroupedKVInput{}
	})
}

// DMInfo is the DataMovement payload of the built-in shuffle outputs: the
// "access URL" metadata of §3.3 — which registered output and partition to
// fetch.
type DMInfo struct {
	ID        shuffle.OutputID
	Partition int
	Size      int64
}

// VMStats is the VertexManagerEvent payload the shuffle outputs send to
// the consumer's ShuffleVertexManager: per-partition output sizes used for
// the automatic partition-cardinality estimate (Figure 6).
type VMStats struct {
	PartitionSizes []int64
}

// OrderedPartitionedConfig configures OrderedPartitionedKVOutput.
type OrderedPartitionedConfig struct {
	Partitioner PartitionerSpec
	// NoStats suppresses the VMStats event to the consumer vertex manager
	// (stats are sent by default; the field is inverted so the gob
	// zero-value default keeps them on).
	NoStats bool
}

// OrderedPartitionedKVOutput is the map-side shuffle transport: it
// partitions pairs by the configured partitioner, sorts each partition by
// key, registers the partitions with the node's shuffle service, and
// announces them with one DataMovement event per partition plus a VMStats
// statistics event. The partition count comes from the edge manager via
// Context.PhysicalCount.
type OrderedPartitionedKVOutput struct {
	ctx         *runtime.Context
	cfg         OrderedPartitionedConfig
	partitioner Partitioner
	parts       [][]pair
	bytes       int64
}

// Initialize decodes configuration and prepares partition buffers.
func (o *OrderedPartitionedKVOutput) Initialize(ctx *runtime.Context) error {
	o.ctx = ctx
	o.cfg = OrderedPartitionedConfig{}
	if len(ctx.Payload) > 0 {
		if err := plugin.Decode(ctx.Payload, &o.cfg); err != nil {
			return err
		}
	}
	p, err := o.cfg.Partitioner.New()
	if err != nil {
		return err
	}
	o.partitioner = p
	if ctx.PhysicalCount <= 0 {
		return fmt.Errorf("library: ordered partitioned output with %d partitions", ctx.PhysicalCount)
	}
	o.parts = make([][]pair, ctx.PhysicalCount)
	return nil
}

// Writer returns a runtime.KVWriter buffering into partitions.
func (o *OrderedPartitionedKVOutput) Writer() (any, error) {
	return kvWriterFunc(func(k, v []byte) error {
		p := o.partitioner.Partition(k, len(o.parts))
		o.parts[p] = append(o.parts[p], pair{append([]byte(nil), k...), append([]byte(nil), v...)})
		o.bytes += int64(RecordSize(k, v))
		return nil
	}), nil
}

// Close sorts, registers and announces the partitions.
func (o *OrderedPartitionedKVOutput) Close() ([]event.Event, error) {
	id := shuffle.OutputID{
		DAG:     o.ctx.Meta.DAG,
		Vertex:  o.ctx.Meta.Vertex,
		Name:    o.ctx.Name,
		Task:    o.ctx.Meta.Task,
		Attempt: o.ctx.Meta.Attempt,
	}
	encoded := make([][]byte, len(o.parts))
	sizes := make([]int64, len(o.parts))
	for i, ps := range o.parts {
		sortPairs(ps)
		encoded[i] = encodePairs(ps)
		sizes[i] = int64(len(encoded[i]))
	}
	if err := o.ctx.Services.Shuffle.Register(o.ctx.Services.Node, id, encoded, o.ctx.Services.Token); err != nil {
		return nil, err
	}
	events := make([]event.Event, 0, len(o.parts)+1)
	for i := range o.parts {
		events = append(events, event.DataMovement{
			SrcVertex:      o.ctx.Meta.Vertex,
			SrcTask:        o.ctx.Meta.Task,
			SrcAttempt:     o.ctx.Meta.Attempt,
			SrcOutputIndex: i,
			TargetVertex:   o.ctx.Name,
			Payload:        plugin.MustEncode(DMInfo{ID: id, Partition: i, Size: sizes[i]}),
		})
	}
	if !o.cfg.NoStats {
		events = append(events, event.VertexManagerEvent{
			TargetVertex: o.ctx.Name,
			SrcVertex:    o.ctx.Meta.Vertex,
			SrcTask:      o.ctx.Meta.Task,
			Payload:      plugin.MustEncode(VMStats{PartitionSizes: sizes}),
		})
	}
	return events, nil
}

// kvWriterFunc adapts a function to runtime.KVWriter.
type kvWriterFunc func(k, v []byte) error

func (f kvWriterFunc) Write(k, v []byte) error { return f(k, v) }

// fetchSet is the shared consumer-side machinery of the shuffle inputs:
// it tracks expected physical inputs, accepts DataMovement events,
// fetches their data (overlapping with producer completion), honours
// InputFailed retractions, and surfaces producer data loss as a
// runtime.InputReadError.
type fetchSet struct {
	ctx *runtime.Context

	mu       sync.Mutex
	cond     *sync.Cond
	runs     map[int][]byte // physical input index -> fetched data
	attempt  map[int]int    // physical input index -> producing attempt
	srcTask  map[int]int    // physical input index -> producing task
	pending  []event.DataMovement
	failure  *runtime.InputReadError
	stopped  bool
	fetchers sync.WaitGroup
	started  bool
	quit     chan struct{}
}

func newFetchSet(ctx *runtime.Context) *fetchSet {
	fs := &fetchSet{
		ctx:     ctx,
		runs:    make(map[int][]byte),
		attempt: make(map[int]int),
		srcTask: make(map[int]int),
		quit:    make(chan struct{}),
	}
	fs.cond = sync.NewCond(&fs.mu)
	return fs
}

// handleEvent records a DataMovement for fetching or an InputFailed
// retraction.
func (f *fetchSet) handleEvent(ev event.Event) error {
	switch e := ev.(type) {
	case event.DataMovement:
		f.mu.Lock()
		f.pending = append(f.pending, e)
		f.mu.Unlock()
		f.cond.Broadcast()
	case event.InputFailed:
		f.mu.Lock()
		if at, ok := f.attempt[e.TargetInputIndex]; ok && at == e.SrcAttempt {
			delete(f.runs, e.TargetInputIndex)
			delete(f.attempt, e.TargetInputIndex)
			delete(f.srcTask, e.TargetInputIndex)
		}
		f.mu.Unlock()
		f.cond.Broadcast()
	}
	return nil
}

// start launches the fetch pump. Fetches overlap with remaining producer
// executions (the latency-hiding overlap of §3.4).
func (f *fetchSet) start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	f.fetchers.Add(1)
	go f.fetchLoop()
	// Watch for an attempt kill so blocked waiters wake up; exits with the
	// fetch set so reused containers don't accumulate watchers.
	go func() {
		select {
		case <-f.ctx.Stop:
			f.mu.Lock()
			f.stopped = true
			f.mu.Unlock()
			f.cond.Broadcast()
		case <-f.quit:
		}
	}()
}

// fetchLoop stays alive until close or failure so that replacement
// movements after an InputFailed retraction are still fetched.
func (f *fetchSet) fetchLoop() {
	defer f.fetchers.Done()
	fetcher := &shuffle.Fetcher{Service: f.ctx.Services.Shuffle, Token: f.ctx.Services.Token}
	for {
		f.mu.Lock()
		for len(f.pending) == 0 && f.failure == nil && !f.stopped {
			f.cond.Wait()
		}
		if f.failure != nil || f.stopped {
			f.mu.Unlock()
			return
		}
		dm := f.pending[0]
		f.pending = f.pending[1:]
		f.mu.Unlock()

		var info DMInfo
		if err := plugin.Decode(dm.Payload, &info); err != nil {
			f.fail(dm, err)
			return
		}
		data, err := fetcher.Fetch(info.ID, info.Partition, f.ctx.Services.Node)
		if err != nil {
			f.fail(dm, err)
			return
		}
		if f.ctx.Services.Counters != nil {
			f.ctx.Services.Counters.Add("SHUFFLE_BYTES", int64(len(data)))
		}
		f.mu.Lock()
		// A retraction may have raced ahead; only store if this movement
		// is still the expected attempt (last writer wins).
		f.runs[dm.TargetInputIndex] = data
		f.attempt[dm.TargetInputIndex] = dm.SrcAttempt
		f.srcTask[dm.TargetInputIndex] = dm.SrcTask
		f.mu.Unlock()
		f.cond.Broadcast()
	}
}

func (f *fetchSet) fail(dm event.DataMovement, err error) {
	f.mu.Lock()
	if f.failure == nil {
		f.failure = &runtime.InputReadError{
			InputName:  f.ctx.Name,
			SrcVertex:  dm.SrcVertex,
			SrcTask:    dm.SrcTask,
			SrcAttempt: dm.SrcAttempt,
			Err:        err,
		}
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// wait blocks until every physical input is fetched, an input failed, or
// the attempt is killed. It returns the fetched runs ordered by physical
// input index.
func (f *fetchSet) wait() ([][]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.runs) < f.ctx.PhysicalCount && f.failure == nil && !f.stopped {
		f.cond.Wait()
	}
	if f.failure != nil {
		return nil, f.failure
	}
	if f.stopped && len(f.runs) < f.ctx.PhysicalCount {
		return nil, fmt.Errorf("library: input %s: attempt killed while fetching", f.ctx.Name)
	}
	out := make([][]byte, f.ctx.PhysicalCount)
	for i := 0; i < f.ctx.PhysicalCount; i++ {
		out[i] = f.runs[i]
	}
	return out, nil
}

func (f *fetchSet) close() error {
	f.mu.Lock()
	f.stopped = true
	started := f.started
	f.mu.Unlock()
	f.cond.Broadcast()
	if started {
		close(f.quit)
		f.fetchers.Wait()
	}
	return nil
}

// OrderedGroupedKVInput is the reduce-side shuffle transport: it fetches
// every expected physical input (one per producer task per owned
// partition), k-way merges the sorted runs and exposes a
// runtime.GroupedKVReader of keys with grouped values.
type OrderedGroupedKVInput struct {
	fs *fetchSet
}

// Initialize prepares the fetch machinery.
func (in *OrderedGroupedKVInput) Initialize(ctx *runtime.Context) error {
	in.fs = newFetchSet(ctx)
	return nil
}

// HandleEvent accepts DataMovement / InputFailed events.
func (in *OrderedGroupedKVInput) HandleEvent(ev event.Event) error { return in.fs.handleEvent(ev) }

// Start begins fetching as soon as movements arrive.
func (in *OrderedGroupedKVInput) Start() error { in.fs.start(); return nil }

// Reader blocks for all inputs, then returns a GroupedKVReader.
func (in *OrderedGroupedKVInput) Reader() (any, error) {
	runs, err := in.fs.wait()
	if err != nil {
		return nil, err
	}
	return newGroupedReader(newMergeReader(runs)), nil
}

// Close stops fetchers.
func (in *OrderedGroupedKVInput) Close() error { return in.fs.close() }
