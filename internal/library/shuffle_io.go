package library

import (
	"fmt"
	"sync"
	"time"

	"tez/internal/event"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

// Registered names of the shuffle transports.
const (
	OrderedPartitionedOutputName = "tez.ordered_partitioned_output"
	OrderedGroupedInputName      = "tez.ordered_grouped_input"
)

func init() {
	runtime.RegisterOutput(OrderedPartitionedOutputName, func() runtime.Output {
		return &OrderedPartitionedKVOutput{}
	})
	runtime.RegisterInput(OrderedGroupedInputName, func() runtime.Input {
		return &OrderedGroupedKVInput{}
	})
}

// DMInfo is the DataMovement payload of the built-in shuffle outputs: the
// "access URL" metadata of §3.3 — which registered output and partition to
// fetch.
type DMInfo struct {
	ID        shuffle.OutputID
	Partition int
	Size      int64
}

// VMStats is the VertexManagerEvent payload the shuffle outputs send to
// the consumer's ShuffleVertexManager: per-partition output sizes used for
// the automatic partition-cardinality estimate (Figure 6).
type VMStats struct {
	PartitionSizes []int64
}

// OrderedPartitionedConfig configures OrderedPartitionedKVOutput.
type OrderedPartitionedConfig struct {
	Partitioner PartitionerSpec
	// NoStats suppresses the VMStats event to the consumer vertex manager
	// (stats are sent by default; the field is inverted so the gob
	// zero-value default keeps them on).
	NoStats bool
}

// OrderedPartitionedKVOutput is the map-side shuffle transport: it
// partitions pairs by the configured partitioner, sorts each partition by
// key, registers the partitions with the node's shuffle service, and
// announces them with one DataMovement event per partition plus a VMStats
// statistics event. The partition count comes from the edge manager via
// Context.PhysicalCount.
type OrderedPartitionedKVOutput struct {
	ctx         *runtime.Context
	cfg         OrderedPartitionedConfig
	partitioner Partitioner
	parts       [][]pair
	bytes       int64
}

// Initialize decodes configuration and prepares partition buffers.
func (o *OrderedPartitionedKVOutput) Initialize(ctx *runtime.Context) error {
	o.ctx = ctx
	o.cfg = OrderedPartitionedConfig{}
	if len(ctx.Payload) > 0 {
		if err := plugin.Decode(ctx.Payload, &o.cfg); err != nil {
			return err
		}
	}
	p, err := o.cfg.Partitioner.New()
	if err != nil {
		return err
	}
	o.partitioner = p
	if ctx.PhysicalCount <= 0 {
		return fmt.Errorf("library: ordered partitioned output with %d partitions", ctx.PhysicalCount)
	}
	o.parts = make([][]pair, ctx.PhysicalCount)
	return nil
}

// Writer returns a runtime.KVWriter buffering into partitions.
func (o *OrderedPartitionedKVOutput) Writer() (any, error) {
	return kvWriterFunc(func(k, v []byte) error {
		p := o.partitioner.Partition(k, len(o.parts))
		o.parts[p] = append(o.parts[p], pair{append([]byte(nil), k...), append([]byte(nil), v...)})
		o.bytes += int64(RecordSize(k, v))
		return nil
	}), nil
}

// Close sorts, registers and announces the partitions.
func (o *OrderedPartitionedKVOutput) Close() ([]event.Event, error) {
	id := shuffle.OutputID{
		DAG:     o.ctx.Meta.DAG,
		Vertex:  o.ctx.Meta.Vertex,
		Name:    o.ctx.Name,
		Task:    o.ctx.Meta.Task,
		Attempt: o.ctx.Meta.Attempt,
	}
	encoded := make([][]byte, len(o.parts))
	sizes := make([]int64, len(o.parts))
	for i, ps := range o.parts {
		sortPairs(ps)
		encoded[i] = encodePairs(ps)
		sizes[i] = int64(len(encoded[i]))
	}
	if err := o.ctx.Services.Shuffle.Register(o.ctx.Services.Node, id, encoded, o.ctx.Services.Token); err != nil {
		return nil, err
	}
	events := make([]event.Event, 0, len(o.parts)+1)
	for i := range o.parts {
		events = append(events, event.DataMovement{
			SrcVertex:      o.ctx.Meta.Vertex,
			SrcTask:        o.ctx.Meta.Task,
			SrcAttempt:     o.ctx.Meta.Attempt,
			SrcOutputIndex: i,
			TargetVertex:   o.ctx.Name,
			Payload:        plugin.MustEncode(DMInfo{ID: id, Partition: i, Size: sizes[i]}),
		})
	}
	if !o.cfg.NoStats {
		events = append(events, event.VertexManagerEvent{
			TargetVertex: o.ctx.Name,
			SrcVertex:    o.ctx.Meta.Vertex,
			SrcTask:      o.ctx.Meta.Task,
			Payload:      plugin.MustEncode(VMStats{PartitionSizes: sizes}),
		})
	}
	return events, nil
}

// kvWriterFunc adapts a function to runtime.KVWriter.
type kvWriterFunc func(k, v []byte) error

func (f kvWriterFunc) Write(k, v []byte) error { return f(k, v) }

// DefaultFetchParallelism is the fetcher-pool size of a shuffle consumer
// when neither am.Config.ShuffleFetchParallelism nor
// shuffle.Config.FetchParallelism overrides it — the counterpart of real
// Tez's parallel fetcher threads per reducer.
const DefaultFetchParallelism = 4

// fetchSet is the shared consumer-side machinery of the shuffle inputs:
// it tracks expected physical inputs, accepts DataMovement events,
// fetches their data on a pool of parallel fetcher goroutines
// (overlapping with producer completion and with each other — the
// latency-hiding overlap of §3.4), honours InputFailed retractions, and
// surfaces producer data loss as a runtime.InputReadError.
type fetchSet struct {
	ctx     *runtime.Context
	fetcher *shuffle.Fetcher // shared by all fetcher goroutines

	mu       sync.Mutex
	cond     *sync.Cond
	runs     map[int][]byte // physical input index -> fetched data
	attempt  map[int]int    // physical input index -> producing attempt
	srcTask  map[int]int    // physical input index -> producing task
	expect   map[int]int    // physical input index -> latest announced attempt
	inflight map[int]bool   // physical input indexes currently being fetched
	pending  []event.DataMovement
	failure  *runtime.InputReadError
	stopped  bool
	fetchers sync.WaitGroup
	started  bool
	quit     chan struct{}

	// testHookFetched, when set, is called by a fetcher goroutine after a
	// fetch completes and before its result is stored — a deterministic
	// interleaving seam for retraction-race tests. Nil in production.
	testHookFetched func(event.DataMovement)
}

func newFetchSet(ctx *runtime.Context) *fetchSet {
	fs := &fetchSet{
		ctx:      ctx,
		fetcher:  &shuffle.Fetcher{Service: ctx.Services.Shuffle, Token: ctx.Services.Token},
		runs:     make(map[int][]byte),
		attempt:  make(map[int]int),
		srcTask:  make(map[int]int),
		expect:   make(map[int]int),
		inflight: make(map[int]bool),
		quit:     make(chan struct{}),
	}
	fs.cond = sync.NewCond(&fs.mu)
	return fs
}

// parallelism resolves the fetcher-pool size: per-task override from the
// AM config (via Services), then the cluster-wide shuffle.Config default,
// then DefaultFetchParallelism. Values below 1 mean serial.
func (f *fetchSet) parallelism() int {
	n := f.ctx.Services.FetchParallelism
	if n == 0 && f.ctx.Services.Shuffle != nil {
		n = f.ctx.Services.Shuffle.FetchParallelism()
	}
	if n == 0 {
		n = DefaultFetchParallelism
	}
	if n < 1 {
		n = 1
	}
	return n
}

// handleEvent records a DataMovement for fetching or an InputFailed
// retraction.
func (f *fetchSet) handleEvent(ev event.Event) error {
	switch e := ev.(type) {
	case event.DataMovement:
		f.mu.Lock()
		f.expect[e.TargetInputIndex] = e.SrcAttempt
		f.pending = append(f.pending, e)
		f.mu.Unlock()
		f.cond.Broadcast()
	case event.InputFailed:
		f.mu.Lock()
		if at, ok := f.expect[e.TargetInputIndex]; ok && at == e.SrcAttempt {
			delete(f.expect, e.TargetInputIndex)
		}
		if at, ok := f.attempt[e.TargetInputIndex]; ok && at == e.SrcAttempt {
			delete(f.runs, e.TargetInputIndex)
			delete(f.attempt, e.TargetInputIndex)
			delete(f.srcTask, e.TargetInputIndex)
		}
		f.mu.Unlock()
		f.cond.Broadcast()
	}
	return nil
}

// start launches the fetcher pool. Fetches overlap with remaining
// producer executions and with each other (the latency-hiding overlap of
// §3.4; a reducer with many remote producers pays max, not sum, of the
// concurrent transfer delays).
func (f *fetchSet) start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	n := f.parallelism()
	f.fetchers.Add(n)
	for i := 0; i < n; i++ {
		go f.fetchLoop()
	}
	// Watch for an attempt kill so blocked waiters wake up; exits with the
	// fetch set so reused containers don't accumulate watchers.
	go func() {
		select {
		case <-f.ctx.Stop:
			f.mu.Lock()
			f.stopped = true
			f.mu.Unlock()
			f.cond.Broadcast()
		case <-f.quit:
		}
	}()
}

// nextLocked picks the next fetchable movement: retracted entries are
// dropped, and an index already being fetched is skipped so two fetchers
// never race on the same physical input (in-flight dedup).
func (f *fetchSet) nextLocked() (event.DataMovement, bool) {
	for i := 0; i < len(f.pending); {
		dm := f.pending[i]
		idx := dm.TargetInputIndex
		if at, ok := f.expect[idx]; !ok || at != dm.SrcAttempt {
			// Retracted while queued; the replacement has (or will get)
			// its own DataMovement.
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
			continue
		}
		if f.inflight[idx] {
			i++
			continue
		}
		f.pending = append(f.pending[:i], f.pending[i+1:]...)
		return dm, true
	}
	return event.DataMovement{}, false
}

// fetchLoop is one fetcher goroutine. The pool stays alive until close or
// failure so that replacement movements after an InputFailed retraction
// are still fetched.
func (f *fetchSet) fetchLoop() {
	defer f.fetchers.Done()
	for {
		f.mu.Lock()
		dm, ok := f.nextLocked()
		for !ok && f.failure == nil && !f.stopped {
			f.cond.Wait()
			dm, ok = f.nextLocked()
		}
		if f.failure != nil || f.stopped {
			f.mu.Unlock()
			return
		}
		idx := dm.TargetInputIndex
		f.inflight[idx] = true
		f.mu.Unlock()

		data, err := f.fetchOne(dm)

		f.mu.Lock()
		delete(f.inflight, idx)
		// Only store if this movement is still the expected attempt: an
		// InputFailed retraction may have raced with the fetch, and a
		// stale in-flight fetch must not clobber (or fail) the newer
		// attempt that replaced it.
		at, live := f.expect[idx]
		current := live && at == dm.SrcAttempt
		switch {
		case err != nil && current:
			if f.failure == nil {
				f.failure = &runtime.InputReadError{
					InputName:  f.ctx.Name,
					SrcVertex:  dm.SrcVertex,
					SrcTask:    dm.SrcTask,
					SrcAttempt: dm.SrcAttempt,
					Err:        err,
				}
			}
		case err == nil && current:
			f.runs[idx] = data
			f.attempt[idx] = dm.SrcAttempt
			f.srcTask[idx] = dm.SrcTask
		}
		// A stale fetch result — success or error — is dropped: the
		// producer attempt was retracted and is being re-executed.
		f.mu.Unlock()
		f.cond.Broadcast()
	}
}

// fetchOne decodes and fetches a single movement, maintaining the
// fetch-path metrics (in-flight gauge + peak, per-fetch latency, retry
// and byte counts).
func (f *fetchSet) fetchOne(dm event.DataMovement) ([]byte, error) {
	var info DMInfo
	if err := plugin.Decode(dm.Payload, &info); err != nil {
		return nil, err
	}
	ctr := f.ctx.Services.Counters
	if ctr != nil {
		cur := ctr.Add("SHUFFLE_FETCHES_INFLIGHT", 1)
		ctr.SetMax("SHUFFLE_FETCHES_INFLIGHT_PEAK", cur)
	}
	start := time.Now()
	data, retries, err := f.fetcher.FetchCounted(info.ID, info.Partition, f.ctx.Services.Node)
	if f.testHookFetched != nil {
		f.testHookFetched(dm)
	}
	if ctr != nil {
		ctr.Add("SHUFFLE_FETCHES_INFLIGHT", -1)
		ctr.Add("SHUFFLE_FETCHES", 1)
		ctr.Add("SHUFFLE_FETCH_TIME_NS", time.Since(start).Nanoseconds())
		if retries > 0 {
			ctr.Add("SHUFFLE_FETCH_RETRIES", int64(retries))
		}
		if err == nil {
			ctr.Add("SHUFFLE_BYTES", int64(len(data)))
		}
	}
	return data, err
}

// wait blocks until every physical input is fetched, an input failed, or
// the attempt is killed. It returns the fetched runs ordered by physical
// input index.
func (f *fetchSet) wait() ([][]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.runs) < f.ctx.PhysicalCount && f.failure == nil && !f.stopped {
		f.cond.Wait()
	}
	if f.failure != nil {
		return nil, f.failure
	}
	if f.stopped && len(f.runs) < f.ctx.PhysicalCount {
		return nil, fmt.Errorf("library: input %s: attempt killed while fetching", f.ctx.Name)
	}
	out := make([][]byte, f.ctx.PhysicalCount)
	for i := 0; i < f.ctx.PhysicalCount; i++ {
		out[i] = f.runs[i]
	}
	return out, nil
}

func (f *fetchSet) close() error {
	f.mu.Lock()
	f.stopped = true
	started := f.started
	f.mu.Unlock()
	f.cond.Broadcast()
	if started {
		close(f.quit)
		f.fetchers.Wait()
	}
	return nil
}

// OrderedGroupedKVInput is the reduce-side shuffle transport: it fetches
// every expected physical input (one per producer task per owned
// partition), k-way merges the sorted runs and exposes a
// runtime.GroupedKVReader of keys with grouped values.
type OrderedGroupedKVInput struct {
	fs *fetchSet
}

// Initialize prepares the fetch machinery.
func (in *OrderedGroupedKVInput) Initialize(ctx *runtime.Context) error {
	in.fs = newFetchSet(ctx)
	return nil
}

// HandleEvent accepts DataMovement / InputFailed events.
func (in *OrderedGroupedKVInput) HandleEvent(ev event.Event) error { return in.fs.handleEvent(ev) }

// Start begins fetching as soon as movements arrive.
func (in *OrderedGroupedKVInput) Start() error { in.fs.start(); return nil }

// Reader blocks for all inputs, then returns a GroupedKVReader.
func (in *OrderedGroupedKVInput) Reader() (any, error) {
	runs, err := in.fs.wait()
	if err != nil {
		return nil, err
	}
	return newGroupedReader(newMergeReader(runs)), nil
}

// Close stops fetchers.
func (in *OrderedGroupedKVInput) Close() error { return in.fs.close() }
