package library

import (
	"fmt"

	"tez/internal/metrics"
)

// CombineFunc is a map-side pre-aggregator with reduce semantics: it runs
// over each key group of a sorted spill (and again over the final merged
// stream) before the data crosses the shuffle wire, cutting spilled and
// transferred records (the combiner of real Tez's ExternalSorter). It
// must be associative and idempotent under re-application, and must emit
// pairs under the same key it was given — the output feeds a partition
// that was chosen from the input key.
type CombineFunc = ReduceFunc

var combineFuncs = map[string]CombineFunc{}

// RegisterCombineFunc installs a named combiner, referenced from
// OrderedPartitionedConfig.Combiner (or mapreduce.JobConf.Combiner).
func RegisterCombineFunc(name string, f CombineFunc) { combineFuncs[name] = f }

// lookupCombiner resolves a configured combiner name; "" means none.
func lookupCombiner(name string) (CombineFunc, error) {
	if name == "" {
		return nil, nil
	}
	f, ok := combineFuncs[name]
	if !ok {
		return nil, fmt.Errorf("library: combine func %q not registered", name)
	}
	return f, nil
}

// kvStream is the minimal key-ordered record iterator shared by the
// spill/merge encoders (satisfied by *refsReader and *mergeReader).
type kvStream interface {
	Next() bool
	Key() []byte
	Value() []byte
	Err() error
}

// encodeStream appends src's records to buf. With a combiner, records are
// grouped by key (src must be key-ordered) and each group is passed
// through the combiner, whose emits are encoded instead; without one the
// records are encoded verbatim. Group buffers are reused — the combiner
// only sees its arguments for the duration of the call.
func encodeStream(src kvStream, combine CombineFunc, buf []byte, ctr *metrics.Counters) ([]byte, error) {
	if combine == nil {
		for src.Next() {
			buf = AppendRecord(buf, src.Key(), src.Value())
		}
		return buf, src.Err()
	}
	var (
		in, out int64
		key     []byte
		values  [][]byte
	)
	w := kvWriterFunc(func(k, v []byte) error {
		buf = AppendRecord(buf, k, v)
		out++
		return nil
	})
	flush := func() error {
		if len(values) == 0 {
			return nil
		}
		return combine(key, values, w)
	}
	for src.Next() {
		in++
		if len(values) > 0 && string(src.Key()) != string(key) {
			if err := flush(); err != nil {
				return nil, err
			}
			values = values[:0]
		}
		if len(values) == 0 {
			key = append(key[:0], src.Key()...)
		}
		values = append(values, src.Value())
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if ctr != nil && in > 0 {
		ctr.Add("COMBINE_INPUT_RECORDS", in)
		ctr.Add("COMBINE_OUTPUT_RECORDS", out)
	}
	return buf, nil
}
