package library

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []struct{ k, v string }{
		{"key", "value"},
		{"", "value"},
		{"key", ""},
		{"", ""},
	}
	for _, c := range cases {
		buf := AppendRecord(nil, []byte(c.k), []byte(c.v))
		if len(buf) != RecordSize([]byte(c.k), []byte(c.v)) {
			t.Fatalf("RecordSize mismatch for %q/%q", c.k, c.v)
		}
		k, v, n, err := DecodeRecord(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("decode %q/%q: n=%d err=%v", c.k, c.v, n, err)
		}
		if string(k) != c.k || string(v) != c.v {
			t.Fatalf("decode got %q/%q", k, v)
		}
	}
}

func TestDecodePaddingAndEmpty(t *testing.T) {
	if _, _, n, err := DecodeRecord(nil); n != 0 || err != nil {
		t.Fatalf("empty: n=%d err=%v", n, err)
	}
	if _, _, n, err := DecodeRecord([]byte{0x00, 0xFF}); n != 0 || err != nil {
		t.Fatalf("padding: n=%d err=%v", n, err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// Header says 10-byte key but buffer is short.
	buf := []byte{11, 'a', 'b'}
	if _, _, _, err := DecodeRecord(buf); err == nil {
		t.Fatal("truncated key accepted")
	}
}

func TestBufferReaderStream(t *testing.T) {
	var buf []byte
	for i := 0; i < 100; i++ {
		buf = AppendRecord(buf, []byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	r := NewBufferReader(buf)
	n := 0
	for r.Next() {
		if string(r.Key()) != fmt.Sprintf("k%03d", n) {
			t.Fatalf("record %d key %q", n, r.Key())
		}
		n++
	}
	if r.Err() != nil || n != 100 {
		t.Fatalf("n=%d err=%v", n, r.Err())
	}
	if cnt, err := CountRecords(buf); err != nil || cnt != 100 {
		t.Fatalf("CountRecords = %d, %v", cnt, err)
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(pairs [][2][]byte) bool {
		var buf []byte
		for _, p := range pairs {
			buf = AppendRecord(buf, p[0], p[1])
		}
		r := NewBufferReader(buf)
		for _, p := range pairs {
			if !r.Next() {
				return false
			}
			if !bytes.Equal(r.Key(), p[0]) || !bytes.Equal(r.Value(), p[1]) {
				return false
			}
		}
		return !r.Next() && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHashPartitionerRangeAndDeterminism(t *testing.T) {
	p := HashPartitioner{}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		got := p.Partition(k, 7)
		if got < 0 || got >= 7 {
			t.Fatalf("partition %d out of range", got)
		}
		if got != p.Partition(k, 7) {
			t.Fatal("non-deterministic")
		}
	}
	if p.Partition([]byte("x"), 1) != 0 {
		t.Fatal("single partition must be 0")
	}
}

func TestHashPartitionerSpreads(t *testing.T) {
	p := HashPartitioner{}
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[p.Partition([]byte(fmt.Sprintf("key-%d", i)), 8)]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("partition %d holds %d of 8000 (badly skewed)", i, c)
		}
	}
}

func TestRangePartitioner(t *testing.T) {
	rp := &RangePartitioner{Points: [][]byte{[]byte("g"), []byte("p")}}
	cases := map[string]int{"a": 0, "g": 0, "h": 1, "p": 1, "q": 2, "zz": 2}
	for k, want := range cases {
		if got := rp.Partition([]byte(k), 3); got != want {
			t.Fatalf("Partition(%q) = %d, want %d", k, got, want)
		}
	}
}

// Property: range partitioning respects ordering — if k1 <= k2 then
// partition(k1) <= partition(k2).
func TestQuickRangePartitionerMonotone(t *testing.T) {
	f := func(keys [][]byte, a, b []byte) bool {
		pts := SplitPoints(sortedCopy(keys), 4)
		rp := &RangePartitioner{Points: pts}
		if bytes.Compare(a, b) > 0 {
			a, b = b, a
		}
		return rp.Partition(a, len(pts)+1) <= rp.Partition(b, len(pts)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortedCopy(keys [][]byte) [][]byte {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = append([]byte(nil), k...)
	}
	sortBytes(out)
	return out
}

func sortBytes(b [][]byte) {
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && bytes.Compare(b[j], b[j-1]) < 0; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}

func TestSplitPointsBalanced(t *testing.T) {
	var sample [][]byte
	for i := 0; i < 100; i++ {
		sample = append(sample, []byte(fmt.Sprintf("%04d", i)))
	}
	pts := SplitPoints(sample, 4)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	rp := &RangePartitioner{Points: pts}
	counts := make([]int, 4)
	for _, k := range sample {
		counts[rp.Partition(k, 4)]++
	}
	for i, c := range counts {
		if c < 15 || c > 40 {
			t.Fatalf("range %d holds %d of 100", i, c)
		}
	}
}

func TestMergeAndGroup(t *testing.T) {
	runA := encodePairs([]pair{{[]byte("a"), []byte("1")}, {[]byte("c"), []byte("2")}})
	runB := encodePairs([]pair{{[]byte("a"), []byte("3")}, {[]byte("b"), []byte("4")}})
	runC := []byte{} // empty run
	g := newGroupedReader(newMergeReader([][]byte{runA, runB, runC}))
	type group struct {
		key  string
		vals int
	}
	var got []group
	for g.Next() {
		got = append(got, group{string(g.Key()), len(g.Values())})
	}
	if g.Err() != nil {
		t.Fatal(g.Err())
	}
	want := []group{{"a", 2}, {"b", 1}, {"c", 1}}
	if len(got) != len(want) {
		t.Fatalf("groups = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Property: merging sorted runs yields a globally sorted stream containing
// every pair exactly once.
func TestQuickMergeSorted(t *testing.T) {
	f := func(raw [][]uint16) bool {
		var runs [][]byte
		total := 0
		for _, rw := range raw {
			ps := make([]pair, 0, len(rw))
			for _, x := range rw {
				k := []byte(fmt.Sprintf("%05d", x))
				ps = append(ps, pair{k, []byte("v")})
			}
			sortPairs(ps)
			total += len(ps)
			runs = append(runs, encodePairs(ps))
		}
		m := newMergeReader(runs)
		var prev []byte
		n := 0
		for m.Next() {
			if prev != nil && bytes.Compare(m.Key(), prev) < 0 {
				return false
			}
			prev = append(prev[:0], m.Key()...)
			n++
		}
		return m.Err() == nil && n == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
