package sparklike

import (
	"fmt"
	"math"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/relop"
	"tez/internal/row"
	"tez/internal/runtime"
)

// K-means (Figure 11): each iteration is one 2-vertex DAG (assign →
// re-centre). In session mode consecutive iterations share one pre-warmed
// Tez session and its containers; the baseline runs every iteration as an
// isolated job with a fresh AM and cold containers.

// Registered processor names.
const (
	kmAssignProcessor = "sparklike.kmeans_assign"
	kmCenterProcessor = "sparklike.kmeans_center"
)

func init() {
	runtime.RegisterProcessor(kmAssignProcessor, func() runtime.Processor { return &kmAssign{} })
	runtime.RegisterProcessor(kmCenterProcessor, func() runtime.Processor { return &kmCenter{} })
}

// kmConfig is the assign processor's payload: the current centroids.
type kmConfig struct {
	Centroids [][2]float64
}

// kmAssign maps each point to its nearest centroid, emitting
// (centroidIdx, x, y, 1) for the re-centre step.
type kmAssign struct {
	ctx *runtime.Context
	cfg kmConfig
}

func (p *kmAssign) Initialize(ctx *runtime.Context) error {
	p.ctx = ctx
	return plugin.Decode(ctx.Payload, &p.cfg)
}

func (p *kmAssign) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	rd, err := in["points"].Reader()
	if err != nil {
		return err
	}
	kv := rd.(runtime.KVReader)
	wAny, err := out["center"].Writer()
	if err != nil {
		return err
	}
	w := wAny.(runtime.KVWriter)
	for kv.Next() {
		r, err := row.Decode(kv.Value())
		if err != nil {
			return err
		}
		x, y := r[0].AsFloat(), r[1].AsFloat()
		best, bestD := 0, math.MaxFloat64
		for i, c := range p.cfg.Centroids {
			d := (x-c[0])*(x-c[0]) + (y-c[1])*(y-c[1])
			if d < bestD {
				best, bestD = i, d
			}
		}
		key := row.EncodeKey(nil, row.Int(int64(best)))
		val := row.Encode(nil, row.Row{row.Int(int64(best)), row.Float(x), row.Float(y)})
		if err := w.Write(key, val); err != nil {
			return err
		}
	}
	return kv.Err()
}

func (p *kmAssign) Close() error { return nil }

// kmCenter reduces each cluster's points to (idx, meanX, meanY, count).
type kmCenter struct{ ctx *runtime.Context }

func (p *kmCenter) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }

func (p *kmCenter) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	rd, err := in["assign"].Reader()
	if err != nil {
		return err
	}
	g := rd.(runtime.GroupedKVReader)
	wAny, err := out["centroids"].Writer()
	if err != nil {
		return err
	}
	w := wAny.(runtime.KVWriter)
	for g.Next() {
		var sx, sy float64
		var n int64
		var idx int64
		for _, v := range g.Values() {
			r, err := row.Decode(v)
			if err != nil {
				return err
			}
			idx = r[0].AsInt()
			sx += r[1].AsFloat()
			sy += r[2].AsFloat()
			n++
		}
		outRow := row.Row{row.Int(idx), row.Float(sx / float64(n)), row.Float(sy / float64(n)), row.Int(n)}
		if err := w.Write(nil, row.Encode(nil, outRow)); err != nil {
			return err
		}
	}
	return g.Err()
}

func (p *kmCenter) Close() error { return nil }

// KMeansIterationDAG builds one iteration's DAG.
func KMeansIterationDAG(name string, points *relop.Table, centroids [][2]float64, outPath string) *dag.DAG {
	d := dag.New(name)
	assign := d.AddVertex("assign", plugin.Desc(kmAssignProcessor, kmConfig{Centroids: centroids}), -1)
	assign.Sources = []dag.DataSource{{
		Name:  "points",
		Input: plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{
			Paths: points.Files, DesiredSplitSize: 64 * 1024,
		}),
	}}
	center := d.AddVertex("center", plugin.Desc(kmCenterProcessor, nil), 2)
	center.Sinks = []dag.DataSink{{
		Name:      "centroids",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: outPath}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: outPath}),
	}}
	d.Connect(assign, center, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	return d
}

// RunKMeans iterates in the given session through am.RunLoop, submitting
// one DAG per iteration (§4.2: "Each iteration can be represented as a new
// DAG and submitted to a shared session for efficient execution"). Returns
// the final centroids.
func RunKMeans(sess *am.Session, plat *platform.Platform, points *relop.Table,
	initial [][2]float64, iterations int, scratch string) ([][2]float64, error) {
	centroids := append([][2]float64{}, initial...)
	outPath := func(it int) string { return fmt.Sprintf("%s/iter%03d", scratch, it) }
	_, err := sess.RunLoop(iterations,
		func(it int) (*dag.DAG, error) {
			out := outPath(it)
			plat.FS.DeletePrefix(out + "/")
			return KMeansIterationDAG(fmt.Sprintf("kmeans-it%03d", it), points, centroids, out), nil
		},
		func(it int, _ am.DAGResult) (bool, error) {
			rows, err := relop.ReadStored(plat.FS, outPath(it))
			if err != nil {
				return false, err
			}
			for _, r := range rows {
				idx := r[0].AsInt()
				if idx >= 0 && int(idx) < len(centroids) {
					centroids[idx] = [2]float64{r[1].AsFloat(), r[2].AsFloat()}
				}
			}
			return false, nil
		})
	if err != nil {
		return nil, err
	}
	return centroids, nil
}

// RunKMeansIsolated runs every iteration with a fresh AM, no container
// reuse and no pre-warming — the per-iteration-job model the paper's
// Figure 11 baseline pays for.
func RunKMeansIsolated(plat *platform.Platform, amCfg am.Config, points *relop.Table,
	initial [][2]float64, iterations int, scratch string) ([][2]float64, error) {
	centroids := append([][2]float64{}, initial...)
	for it := 0; it < iterations; it++ {
		cfg := amCfg
		cfg.Name = fmt.Sprintf("%s-it%03d", amCfg.Name, it)
		cfg.DisableContainerReuse = true
		cfg.PrewarmContainers = 0
		sess := am.NewSession(plat, cfg)
		out := fmt.Sprintf("%s/iter%03d", scratch, it)
		plat.FS.DeletePrefix(out + "/")
		d := KMeansIterationDAG(fmt.Sprintf("kmeansmr-it%03d", it), points, centroids, out)
		res, err := sess.Run(d)
		sess.Close()
		if err != nil {
			return nil, err
		}
		if res.Status != am.DAGSucceeded {
			return nil, fmt.Errorf("sparklike: kmeans iteration %d: %v", it, res.Status)
		}
		rows, err := relop.ReadStored(plat.FS, out)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			idx := r[0].AsInt()
			if idx >= 0 && int(idx) < len(centroids) {
				centroids[idx] = [2]float64{r[1].AsFloat(), r[2].AsFloat()}
			}
		}
	}
	return centroids, nil
}
