// Package sparklike reproduces the Spark-on-YARN comparison of §5.4 and
// Figures 12–13: the same data-parallel computation executed by
//
//   - ServiceExecutor — the service-daemon model: a fixed pool of executor
//     containers is allocated at application start and held for the
//     application's whole lifetime, idle or not;
//   - Tez — ephemeral per-task containers through a Tez session, which
//     releases capacity whenever it has no work (the paper's argument for
//     multi-tenancy and elasticity in §4.3).
//
// The workload is the paper's: partitioning a lineitem-style dataset along
// a column (L_SHIPDATE) under multi-user concurrency. The package also
// provides the iterative K-means job of Figure 11, run either as
// per-iteration DAGs in one shared (pre-warmed) Tez session or as
// one-job-per-iteration with a fresh AM and no reuse (the MR model).
package sparklike

import (
	"fmt"
	"sync"
	"time"

	"tez/internal/am"
	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/relop"
	"tez/internal/row"
	"tez/internal/runtime"
)

// PartitionJob describes the Figure 12/13 workload: cluster a table's rows
// into Partitions buckets by KeyCol and store the result.
type PartitionJob struct {
	Table      *relop.Table
	KeyCol     int
	Partitions int
	OutPath    string
}

// RunPartitionTez executes the job with ephemeral Tez tasks in sess: a
// 2-vertex DAG whose map vertex buckets rows (unordered partitioned
// transport — the same per-row work the service executor does) and whose
// reduce vertex writes each bucket out.
func RunPartitionTez(sess *am.Session, name string, job PartitionJob) error {
	d := partitionDAG(name, job)
	res, err := sess.Run(d)
	if err != nil {
		return err
	}
	if res.Status != am.DAGSucceeded {
		return fmt.Errorf("sparklike: partition job %s: %v", name, res.Status)
	}
	return nil
}

// Service is the daemon-model executor pool.
type Service struct {
	plat *platform.Platform
	app  *cluster.Application
	name string

	mu         sync.Mutex
	containers []*cluster.Container
	queue      chan func() // tasks dispatched to executor workers
	wg         sync.WaitGroup
	closed     bool
}

// StartService allocates and launches `executors` containers and holds
// them until Close — the daemon execution model the paper contrasts with
// Tez's ephemeral tasks (§4.3). It blocks until the full pool is
// allocated; once softWait passes it settles for a partial pool, and a
// fully starved daemon keeps waiting for its first executor (up to a hard
// cap of 20× softWait) exactly as a service queued behind other daemons
// on a busy cluster would — the contention Figures 12–13 visualise.
func StartService(plat *platform.Platform, name string, executors int, res cluster.Resource, softWait time.Duration) (*Service, error) {
	s := &Service{
		plat:  plat,
		app:   plat.RM.Submit(name),
		name:  name,
		queue: make(chan func()),
	}
	for i := 0; i < executors; i++ {
		s.app.Request(&cluster.ContainerRequest{Resource: res})
	}
	soft := time.Now().Add(softWait)
	hard := time.Now().Add(20 * softWait)
	for len(s.containers) < executors {
		if time.Now().After(soft) && len(s.containers) > 0 {
			break
		}
		if time.Now().After(hard) {
			s.Close()
			return nil, fmt.Errorf("sparklike: %s: no executors allocated within %v", name, 20*softWait)
		}
		ev, ok := s.app.Events().TryGet()
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if ae, isAlloc := ev.(cluster.AllocatedEvent); isAlloc {
			if err := ae.Container.Launch(); err != nil {
				continue
			}
			s.containers = append(s.containers, ae.Container)
		}
	}
	// One worker per executor: tasks run inside the held containers.
	for _, c := range s.containers {
		c := c
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for fn := range s.queue {
				fn := fn
				_ = c.Exec(func(<-chan struct{}) error { fn(); return nil })
			}
		}()
	}
	return s, nil
}

// Executors returns the pool size.
func (s *Service) Executors() int { return len(s.containers) }

// runTasks executes the closures on the pool and waits for all of them.
func (s *Service) runTasks(tasks []func() error) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(tasks))
	for _, t := range tasks {
		t := t
		wg.Add(1)
		s.queue <- func() {
			defer wg.Done()
			if err := t(); err != nil {
				errCh <- err
			}
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Close releases the executor pool.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	s.app.Unregister()
}

// Registered processor names for the Tez partition job.
const (
	partMapProcessor    = "sparklike.partition_map"
	partReduceProcessor = "sparklike.partition_reduce"
)

func init() {
	runtime.RegisterProcessor(partMapProcessor, func() runtime.Processor { return &partMap{} })
	runtime.RegisterProcessor(partReduceProcessor, func() runtime.Processor { return &partReduce{} })
}

type partCfg struct{ KeyCol int }

// partMap reads table rows and emits (encodedKey, row) pairs.
type partMap struct {
	ctx *runtime.Context
	cfg partCfg
}

func (p *partMap) Initialize(ctx *runtime.Context) error {
	p.ctx = ctx
	return plugin.Decode(ctx.Payload, &p.cfg)
}

func (p *partMap) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	rd, err := in["rows"].Reader()
	if err != nil {
		return err
	}
	kv := rd.(runtime.KVReader)
	wAny, err := out["reduce"].Writer()
	if err != nil {
		return err
	}
	w := wAny.(runtime.KVWriter)
	for kv.Next() {
		r, err := row.Decode(kv.Value())
		if err != nil {
			return err
		}
		if err := w.Write(row.EncodeKey(nil, r[p.cfg.KeyCol]), kv.Value()); err != nil {
			return err
		}
	}
	return kv.Err()
}

func (p *partMap) Close() error { return nil }

// partReduce writes its bucket to the sink unchanged.
type partReduce struct{ ctx *runtime.Context }

func (p *partReduce) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }

func (p *partReduce) Run(in map[string]runtime.Input, out map[string]runtime.Output) error {
	rd, err := in["map"].Reader()
	if err != nil {
		return err
	}
	kv := rd.(runtime.KVReader)
	wAny, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	w := wAny.(runtime.KVWriter)
	for kv.Next() {
		if err := w.Write(nil, kv.Value()); err != nil {
			return err
		}
	}
	return kv.Err()
}

func (p *partReduce) Close() error { return nil }

// partitionDAG builds the 2-vertex repartitioning DAG.
func partitionDAG(name string, job PartitionJob) *dag.DAG {
	d := dag.New(name)
	m := d.AddVertex("map", plugin.Desc(partMapProcessor, partCfg{KeyCol: job.KeyCol}), -1)
	m.Sources = []dag.DataSource{{
		Name:  "rows",
		Input: plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{
			Paths:            job.Table.Files,
			DesiredSplitSize: 256 * 1024,
		}),
	}}
	r := d.AddVertex("reduce", plugin.Desc(partReduceProcessor, nil), job.Partitions)
	r.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: job.OutPath}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: job.OutPath}),
	}}
	d.Connect(m, r, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.UnorderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.UnorderedInputName, nil),
	})
	return d
}
