package sparklike

import (
	"fmt"
	"sync/atomic"

	"tez/internal/library"
	"tez/internal/row"
	"tez/internal/shuffle"
)

// RunPartition executes the partitioning job on the held executor pool:
// map tasks read the table splits, bucket rows by key and publish the
// buckets through the shuffle service; reduce tasks fetch their bucket and
// write the output. The daemon keeps its containers for the whole
// application regardless of load.
func (s *Service) RunPartition(jobID string, job PartitionJob) error {
	fs := s.plat.FS
	var splits []library.SplitAssignment
	for _, f := range job.Table.Files {
		ss, err := fs.Splits(f, 0)
		if err != nil {
			return err
		}
		for _, sp := range ss {
			splits = append(splits, library.SplitAssignment{Splits: splitSlice(sp)})
		}
	}
	dagID := s.name + "/" + jobID
	part := library.HashPartitioner{}
	node := func(i int) string {
		return string(s.containers[i%len(s.containers)].Node())
	}

	// Map phase.
	var mapTasks []func() error
	var seq int64
	for i, asn := range splits {
		i, asn := i, asn
		mapTasks = append(mapTasks, func() error {
			buckets := make([][]byte, job.Partitions)
			for _, sp := range asn.Splits {
				data, err := fs.ReadAt(sp.Path, node(i), sp.Offset, sp.Length)
				if err != nil {
					return err
				}
				r := library.NewPaddedReader(data)
				for r.Next() {
					rr, err := row.Decode(r.Value())
					if err != nil {
						return err
					}
					key := row.EncodeKey(nil, rr[job.KeyCol])
					p := part.Partition(key, job.Partitions)
					buckets[p] = library.AppendRecord(buckets[p], key, r.Value())
				}
				if err := r.Err(); err != nil {
					return err
				}
			}
			id := shuffle.OutputID{DAG: dagID, Vertex: "map", Name: "reduce", Task: i}
			_ = atomic.AddInt64(&seq, 1)
			return library.RegisterShuffleOutput(s.plat.Shuffle, node(i), id, buckets)
		})
	}
	if err := s.runTasks(mapTasks); err != nil {
		return err
	}

	// Reduce phase: one task per partition writes the bucket out.
	var redTasks []func() error
	for p := 0; p < job.Partitions; p++ {
		p := p
		redTasks = append(redTasks, func() error {
			w, err := fs.Create(fmt.Sprintf("%s/part-%05d", job.OutPath, p), node(p))
			if err != nil {
				return err
			}
			fetcher := &shuffle.Fetcher{Service: s.plat.Shuffle}
			for m := range splits {
				id := shuffle.OutputID{DAG: dagID, Vertex: "map", Name: "reduce", Task: m}
				data, err := fetcher.Fetch(id, p, node(p))
				if err != nil {
					return err
				}
				r := library.NewBufferReader(data)
				for r.Next() {
					if _, err := w.Write(library.AppendRecord(nil, nil, r.Value())); err != nil {
						return err
					}
				}
				if err := r.Err(); err != nil {
					return err
				}
			}
			return w.Close()
		})
	}
	if err := s.runTasks(redTasks); err != nil {
		return err
	}
	s.plat.Shuffle.DeleteDAG(dagID)
	return nil
}

// splitSlice adapts one dfs split into the slice SplitAssignment wants.
func splitSlice[T any](s T) []T { return []T{s} }
