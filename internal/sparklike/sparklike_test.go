package sparklike

import (
	"math"
	"sort"
	"testing"
	"time"

	"tez/internal/am"
	"tez/internal/cluster"
	"tez/internal/data"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
)

func TestPartitionJobBothExecutors(t *testing.T) {
	plat := platform.New(platform.Fast(4))
	defer plat.Stop()
	tb, err := data.GenZipfPairs(plat.FS, "li", 1000, 40, 1.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	job := PartitionJob{Table: tb, KeyCol: 0, Partitions: 3, OutPath: "/out/part-tez"}

	sess := am.NewSession(plat, am.Config{Name: "tezjob"})
	defer sess.Close()
	if err := RunPartitionTez(sess, "p", job); err != nil {
		t.Fatal(err)
	}
	tezRows, err := relop.ReadStored(plat.FS, "/out/part-tez")
	if err != nil {
		t.Fatal(err)
	}
	if len(tezRows) != 1000 {
		t.Fatalf("tez rows = %d", len(tezRows))
	}

	svc, err := StartService(plat, "svc", 3, cluster.Resource{MemoryMB: 1024, VCores: 1}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	job.OutPath = "/out/part-svc"
	if err := svc.RunPartition("j1", job); err != nil {
		t.Fatal(err)
	}
	svcRows, err := relop.ReadStored(plat.FS, "/out/part-svc")
	if err != nil {
		t.Fatal(err)
	}
	if len(svcRows) != 1000 {
		t.Fatalf("service rows = %d", len(svcRows))
	}
	// Same multiset of rows from both executors.
	if key(tezRows) != key(svcRows) {
		t.Fatal("executors disagree on partition job output")
	}
}

func key(rows []row.Row) string {
	ks := make([]string, len(rows))
	for i, r := range rows {
		ks[i] = string(row.EncodeKey(nil, r...))
	}
	sort.Strings(ks)
	out := ""
	for _, k := range ks {
		out += k + "|"
	}
	return out
}

func TestServiceHoldsResourcesTezReleases(t *testing.T) {
	plat := platform.New(platform.Fast(4))
	defer plat.Stop()

	svc, err := StartService(plat, "holder", 4, cluster.Resource{MemoryMB: 1024, VCores: 1}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Idle service still holds 4 containers.
	time.Sleep(20 * time.Millisecond)
	if got := svc.app.Allocated().MemoryMB; got != 4*1024 {
		t.Fatalf("idle service holds %d MB", got)
	}
	svc.Close()
	if got := plat.RM.UsedResources().MemoryMB; got != 0 {
		t.Fatalf("after close, cluster still used: %d", got)
	}

	// A Tez session with a short idle-release gives capacity back.
	sess := am.NewSession(plat, am.Config{Name: "eph", ContainerIdleRelease: 5 * time.Millisecond})
	defer sess.Close()
	tb, err := data.GenZipfPairs(plat.FS, "li2", 200, 10, 1.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunPartitionTez(sess, "p", PartitionJob{Table: tb, KeyCol: 0, Partitions: 2, OutPath: "/out/eph"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && plat.RM.UsedResources().MemoryMB > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if got := plat.RM.UsedResources().MemoryMB; got != 0 {
		t.Fatalf("tez session still holds %d MB after idle", got)
	}
}

func TestKMeansConvergesAndSessionMatchesIsolated(t *testing.T) {
	plat := platform.New(platform.Fast(4))
	defer plat.Stop()
	points, truth, err := data.GenPoints(plat.FS, "pts", 600, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Seed near the true centres (k-means is only locally convergent).
	initial := make([][2]float64, len(truth))
	for i, c := range truth {
		initial[i] = [2]float64{c[0] + 4, c[1] - 4}
	}

	sess := am.NewSession(plat, am.Config{Name: "km", PrewarmContainers: 2})
	defer sess.Close()
	got, err := RunKMeans(sess, plat, points, initial, 5, "/tmp/km")
	if err != nil {
		t.Fatal(err)
	}
	gotIso, err := RunKMeansIsolated(plat, am.Config{Name: "kmiso"}, points, initial, 5, "/tmp/kmiso")
	if err != nil {
		t.Fatal(err)
	}
	// Both execution modes compute identical centroids.
	for i := range got {
		if math.Abs(got[i][0]-gotIso[i][0]) > 1e-9 || math.Abs(got[i][1]-gotIso[i][1]) > 1e-9 {
			t.Fatalf("session vs isolated centroids differ: %v vs %v", got, gotIso)
		}
	}
	// And each found centroid is near some true centre.
	for _, c := range got {
		best := math.MaxFloat64
		for _, tr := range truth {
			d := math.Hypot(c[0]-tr[0], c[1]-tr[1])
			if d < best {
				best = d
			}
		}
		if best > 10 {
			t.Fatalf("centroid %v too far from any true centre %v", c, truth)
		}
	}
}
