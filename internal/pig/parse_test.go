package pig

import (
	"sort"
	"strings"
	"testing"

	"tez/internal/am"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
)

func parseSetup(t *testing.T) (*platform.Platform, *am.Session, Catalog) {
	t.Helper()
	plat, sess, users, events := setup(t)
	return plat, sess, Catalog{"users": users, "events": events}
}

func TestParseScriptEndToEnd(t *testing.T) {
	plat, sess, cat := parseSetup(t)
	script := `
	-- adults joined with their events, counted per country
	u = LOAD 'users';
	e = LOAD 'events';
	adults = FILTER u BY age >= 18;
	j = JOIN adults BY uid, e BY uid;
	agg = GROUP j BY c1 GENERATE sum(n) AS events;
	STORE agg INTO '/out/pp_agg';
	`
	// column c1 of the join output is "country" (uid, country, age, …);
	// verify the numbered fallback works alongside names.
	script = strings.Replace(script, "GROUP j BY c1", "GROUP j BY country", 1)
	s, err := ParseScript("pp", script, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.RunTez(sess); err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	rows, err := relop.ReadStored(plat.FS, "/out/pp_agg")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, r := range rows {
		got[r[0].Str] = r[1].AsFloat()
	}
	if got["de"] != 12 || got["us"] != 1 || len(got) != 2 {
		t.Fatalf("agg = %v", got)
	}
}

func TestParseForeachSplitUnionDistinctOrder(t *testing.T) {
	plat, sess, cat := parseSetup(t)
	script := `
	e = LOAD 'events';
	ids = FOREACH e GENERATE uid, n * 2 AS doubled;
	SPLIT ids INTO small IF uid < 2, big IF uid >= 2;
	all = UNION small, big;
	d = DISTINCT all;
	o = ORDER d BY doubled DESC LIMIT 3;
	STORE o INTO '/out/pp_ord';
	STORE small INTO '/out/pp_small';
	`
	s, err := ParseScript("pp2", script, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.RunTez(sess); err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	ord, err := relop.ReadStored(plat.FS, "/out/pp_ord")
	if err != nil {
		t.Fatal(err)
	}
	if len(ord) != 3 {
		t.Fatalf("ordered rows = %d", len(ord))
	}
	for i := 1; i < len(ord); i++ {
		if row.Compare(ord[i-1][1], ord[i][1]) < 0 {
			t.Fatalf("descending order broken: %v", ord)
		}
	}
	// events uids 1,1,2,3,9 → small = uids < 2 → 2 rows.
	small, _ := relop.ReadStored(plat.FS, "/out/pp_small")
	if len(small) != 2 {
		t.Fatalf("small = %d rows", len(small))
	}
}

func TestParseSkewJoin(t *testing.T) {
	plat, sess, cat := parseSetup(t)
	script := `
	u = LOAD 'users';
	e = LOAD 'events';
	j = SKEWJOIN e BY uid, u BY uid PARTITIONS 3;
	counted = GROUP j BY kind GENERATE count(*) AS n;
	STORE counted INTO '/out/pp_skew';
	`
	s, err := ParseScript("pp3", script, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.RunTez(sess); err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	rows, err := relop.ReadStored(plat.FS, "/out/pp_skew")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range rows {
		got[r[0].Str] = r[1].AsInt()
	}
	// events with uid in users(1..4): click(uid1), view(uid1), click(uid2), view(uid3).
	if got["click"] != 2 || got["view"] != 2 {
		t.Fatalf("skew join counts = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	_, _, cat := parseSetup(t)
	bad := []string{
		``,                                       // no store
		`x = LOAD 'missing'; STORE x INTO '/o';`, // unknown table
		`x = FILTER y BY a > 1; STORE x INTO '/o';`,                                     // unknown relation
		`u = LOAD 'users'; STORE u INTO 1;`,                                             // path must be string
		`u = LOAD 'users'; v = FILTER u BY nope > 1; STORE v INTO '/o';`,                // unknown column
		`u = LOAD 'users'; v = GROUP u BY uid GENERATE median(age); STORE v INTO '/o';`, // unknown aggregate
		`u = LOAD 'users' extra; STORE u INTO '/o';`,                                    // trailing tokens
	}
	for _, src := range bad {
		if _, err := ParseScript("bad", src, cat); err == nil {
			t.Fatalf("parsed invalid script %q", src)
		}
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	_, _, cat := parseSetup(t)
	s, err := ParseScript("c", `
	-- leading comment
	u = LOAD 'users';  -- trailing comment
	STORE u INTO '/out/c';
	`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Roots()) != 1 {
		t.Fatal("store not recorded")
	}
}

func TestSplitStatements(t *testing.T) {
	got := splitStatements("a = 1; b = 'x;y'; -- c = 2;\n d = 3;")
	var clean []string
	for _, s := range got {
		if strings.TrimSpace(s) != "" {
			clean = append(clean, strings.TrimSpace(s))
		}
	}
	sort.Strings(clean)
	want := []string{"a = 1", "b = 'x;y'", "d = 3"}
	sort.Strings(want)
	if len(clean) != len(want) {
		t.Fatalf("statements = %q", clean)
	}
	for i := range want {
		if clean[i] != want[i] {
			t.Fatalf("statements = %q", clean)
		}
	}
}
