// Package pig is the ETL-scripting engine of §5.3 in miniature: a
// procedural dataflow builder (LOAD / FILTER / FOREACH / GROUP / JOIN /
// SKEW JOIN / ORDER BY / DISTINCT / UNION / SPLIT / STORE) whose scripts
// form arbitrary DAGs with multiple outputs. On the Tez backend a whole
// script runs as one DAG — including the sample→histogram→range-partition
// sub-graphs for ORDER BY and skewed joins; on the MapReduce backend it
// degrades to the pre-Tez chain of jobs with DFS materialisation.
package pig

import (
	"fmt"
	"strings"

	"tez/internal/am"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
)

// Script is a dataflow under construction.
type Script struct {
	Name   string
	Exec   relop.Config
	stores []*relop.Node
}

// NewScript starts an empty script.
func NewScript(name string) *Script { return &Script{Name: name} }

// Dataset is one relation in the script.
type Dataset struct {
	s    *Script
	node *relop.Node
}

// Schema returns the dataset's schema.
func (d *Dataset) Schema() row.Schema { return d.node.OutSchema }

// Col resolves a column reference by name.
func (d *Dataset) Col(name string) *relop.Expr {
	idx := d.node.OutSchema.Index(name)
	if idx < 0 {
		panic(fmt.Sprintf("pig: unknown column %q in %v", name, d.node.OutSchema))
	}
	return relop.Col(idx)
}

// Load reads a catalogued table.
func (s *Script) Load(t *relop.Table) *Dataset {
	return &Dataset{s: s, node: relop.Scan(t)}
}

// Filter keeps rows matching pred.
func (d *Dataset) Filter(pred *relop.Expr) *Dataset {
	return &Dataset{s: d.s, node: relop.FilterNode(d.node, pred)}
}

// ForEach projects expressions (GENERATE).
func (d *Dataset) ForEach(exprs []*relop.Expr, names []string, kinds []row.Kind) *Dataset {
	return &Dataset{s: d.s, node: relop.ProjectNode(d.node, exprs, names, kinds)}
}

// GroupBy groups and aggregates.
func (d *Dataset) GroupBy(keys []*relop.Expr, keyNames []string, aggs []relop.AggDef) *Dataset {
	return &Dataset{s: d.s, node: relop.AggNode(d.node, keys, keyNames, aggs)}
}

// Join is a hash-partitioned inner equality join.
func (d *Dataset) Join(o *Dataset, myKeys, otherKeys []*relop.Expr) *Dataset {
	return &Dataset{s: d.s, node: relop.JoinNode(d.node, o.node, myKeys, otherKeys, false)}
}

// SkewJoin joins with sampled range partitioning: a histogram vertex
// estimates the (skewed) key distribution at runtime and a custom vertex
// manager re-partitions both sides with balanced ranges (§5.3).
func (d *Dataset) SkewJoin(o *Dataset, myKeys, otherKeys []*relop.Expr, partitions int) *Dataset {
	return &Dataset{s: d.s, node: relop.SkewJoinNode(d.node, o.node, myKeys, otherKeys, partitions)}
}

// OrderBy globally orders with sample-based range partitioning on Tez
// (single reducer on MR).
func (d *Dataset) OrderBy(keys []*relop.Expr, desc []bool, limit, partitions int) *Dataset {
	return &Dataset{s: d.s, node: relop.RangeSortNode(d.node, keys, desc, limit, partitions)}
}

// Distinct removes duplicates.
func (d *Dataset) Distinct() *Dataset {
	return &Dataset{s: d.s, node: relop.DistinctNode(d.node)}
}

// Union concatenates same-width datasets.
func (d *Dataset) Union(others ...*Dataset) *Dataset {
	nodes := []*relop.Node{d.node}
	for _, o := range others {
		nodes = append(nodes, o.node)
	}
	return &Dataset{s: d.s, node: relop.UnionNode(nodes...)}
}

// Split returns one filtered branch per predicate (Pig SPLIT): all
// branches share the single upstream computation in the Tez DAG.
func (d *Dataset) Split(preds ...*relop.Expr) []*Dataset {
	out := make([]*Dataset, len(preds))
	for i, p := range preds {
		out[i] = d.Filter(p)
	}
	return out
}

// Store writes the dataset to a DFS directory (scripts may store many
// relations — the multi-output DAGs of §5.3).
func (s *Script) Store(d *Dataset, path string) {
	s.stores = append(s.stores, relop.StoreNode(d.node, path))
}

// Roots returns the plan roots (for inspection).
func (s *Script) Roots() []*relop.Node { return s.stores }

// Explain renders the compiled Tez DAG of the script plus the
// per-stage vectorization decisions (which pipelines run
// batch-at-a-time and why any fell back to rows).
func (s *Script) Explain() (string, error) {
	if len(s.stores) == 0 {
		return "", fmt.Errorf("pig: script %s stores nothing", s.Name)
	}
	d, err := relop.EmitDAGOnly(s.Exec, s.Name, s.stores)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tez dag %s:\n", d.Name)
	order, err := d.TopoOrder()
	if err != nil {
		return "", err
	}
	for _, name := range order {
		v := d.Vertex(name)
		par := "runtime"
		if v.Parallelism > 0 {
			par = fmt.Sprintf("%d", v.Parallelism)
		}
		fmt.Fprintf(&b, "  vertex %-24s tasks=%s", name, par)
		if len(v.Sinks) > 0 {
			fmt.Fprintf(&b, " sinks=%d", len(v.Sinks))
		}
		b.WriteString("\n")
	}
	for _, ed := range d.Edges {
		fmt.Fprintf(&b, "  edge   %-24s -> %-20s %s\n", ed.From, ed.To, ed.Property.Movement)
	}
	if vs := relop.ExplainStages(d); vs != "" {
		b.WriteString("vectorization:\n")
		for _, line := range strings.Split(strings.TrimRight(vs, "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	return b.String(), nil
}

// RunTez executes the whole script as one Tez DAG in the session.
func (s *Script) RunTez(sess *am.Session) (am.DAGResult, error) {
	if len(s.stores) == 0 {
		return am.DAGResult{}, fmt.Errorf("pig: script %s stores nothing", s.Name)
	}
	return relop.RunTez(sess, s.Exec, s.Name, s.stores)
}

// RunMR executes the script as a chain of MapReduce-shaped jobs.
func (s *Script) RunMR(plat *platform.Platform, amCfg am.Config) (relop.MRStats, error) {
	if len(s.stores) == 0 {
		return relop.MRStats{}, fmt.Errorf("pig: script %s stores nothing", s.Name)
	}
	return relop.RunMR(plat, amCfg, s.Exec, s.Name, s.stores)
}
