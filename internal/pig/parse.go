package pig

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"tez/internal/relop"
	"tez/internal/row"
)

// Catalog resolves LOAD names to tables.
type Catalog map[string]*relop.Table

// ParseScript parses a PigLatin-style script (§5.3's procedural language
// in miniature) into an executable Script. Statements end with ';' and
// `--` starts a line comment. Supported statements:
//
//	A = LOAD 'table';
//	B = FILTER A BY <expr>;
//	C = FOREACH A GENERATE <expr> [AS name], ...;
//	D = GROUP A BY col, ... GENERATE count(*) AS n, sum(<expr>) AS s, ...;
//	E = JOIN A BY col, B BY col;
//	F = SKEWJOIN A BY col, B BY col [PARTITIONS n];
//	G = ORDER A BY col [DESC], ... [LIMIT n] [PARTITIONS n];
//	H = DISTINCT A;
//	I = UNION A, B, ...;
//	SPLIT A INTO X IF <expr>, Y IF <expr>, ...;
//	STORE A INTO '/out/path';
//
// Expressions use the relop expression syntax (comparisons, arithmetic,
// AND/OR/NOT, 'string' literals).
func ParseScript(name, src string, cat Catalog) (*Script, error) {
	s := NewScript(name)
	env := map[string]*Dataset{}
	stored := 0
	for i, stmtSrc := range splitStatements(src) {
		if strings.TrimSpace(stmtSrc) == "" {
			continue
		}
		if err := parseStatement(s, env, cat, stmtSrc, &stored); err != nil {
			return nil, fmt.Errorf("pig: statement %d (%q): %w", i+1, strings.TrimSpace(stmtSrc), err)
		}
	}
	if stored == 0 {
		return nil, fmt.Errorf("pig: script %s has no STORE statement", name)
	}
	return s, nil
}

// splitStatements splits on ';' outside quotes and strips -- comments.
func splitStatements(src string) []string {
	var out []string
	var cur strings.Builder
	inStr := false
	i := 0
	rs := []rune(src)
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\'':
			inStr = !inStr
			cur.WriteRune(r)
			i++
		case !inStr && r == '-' && i+1 < len(rs) && rs[i+1] == '-':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case !inStr && r == ';':
			out = append(out, cur.String())
			cur.Reset()
			i++
		default:
			cur.WriteRune(r)
			i++
		}
	}
	out = append(out, cur.String())
	return out
}

// stmtTok is one token with its source span (expressions are re-sliced
// from the original text and handed to relop.ParseExpr).
type stmtTok struct {
	kind       string // word, str, op
	text       string
	start, end int
}

func tokenize(src string) ([]stmtTok, error) {
	var toks []stmtTok
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '\'':
			j := i + 1
			for j < len(rs) && rs[j] != '\'' {
				j++
			}
			if j >= len(rs) {
				return nil, fmt.Errorf("unterminated string")
			}
			toks = append(toks, stmtTok{"str", string(rs[i+1 : j]), i, j + 1})
			i = j + 1
		case unicode.IsLetter(r) || r == '_' || unicode.IsDigit(r):
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_' || rs[j] == '.') {
				j++
			}
			toks = append(toks, stmtTok{"word", string(rs[i:j]), i, j})
			i = j
		default:
			two := ""
			if i+1 < len(rs) {
				two = string(rs[i : i+2])
			}
			if two == "<=" || two == ">=" || two == "!=" || two == "<>" || two == "==" {
				toks = append(toks, stmtTok{"op", two, i, i + 2})
				i += 2
			} else {
				toks = append(toks, stmtTok{"op", string(r), i, i + 1})
				i++
			}
		}
	}
	return toks, nil
}

// stmtParser walks a single statement's tokens.
type stmtParser struct {
	src  string
	toks []stmtTok
	pos  int
}

func (p *stmtParser) peek() stmtTok {
	if p.pos >= len(p.toks) {
		return stmtTok{kind: "eof"}
	}
	return p.toks[p.pos]
}

func (p *stmtParser) kw(w string) bool {
	t := p.peek()
	if t.kind == "word" && strings.EqualFold(t.text, w) {
		p.pos++
		return true
	}
	return false
}

func (p *stmtParser) expectKw(w string) error {
	if !p.kw(w) {
		return fmt.Errorf("expected %s near %q", w, p.peek().text)
	}
	return nil
}

func (p *stmtParser) op(text string) bool {
	t := p.peek()
	if t.kind == "op" && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *stmtParser) word() (string, error) {
	t := p.peek()
	if t.kind != "word" {
		return "", fmt.Errorf("expected identifier near %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *stmtParser) str() (string, error) {
	t := p.peek()
	if t.kind != "str" {
		return "", fmt.Errorf("expected 'string' near %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *stmtParser) intLit() (int, error) {
	t := p.peek()
	if t.kind != "word" {
		return 0, fmt.Errorf("expected number near %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, err
	}
	p.pos++
	return n, nil
}

// exprUntil consumes tokens (balancing parentheses) up to one of the stop
// keywords or a comma at depth 0, and parses the consumed span.
func (p *stmtParser) exprUntil(schema row.Schema, stops ...string) (*relop.Expr, error) {
	depth := 0
	start := p.pos
	for p.pos < len(p.toks) {
		t := p.peek()
		if t.kind == "op" && t.text == "(" {
			depth++
		}
		if t.kind == "op" && t.text == ")" {
			if depth == 0 {
				break // a closing paren of the surrounding construct
			}
			depth--
		}
		if depth == 0 {
			if t.kind == "op" && t.text == "," {
				break
			}
			stop := false
			for _, s := range stops {
				if t.kind == "word" && strings.EqualFold(t.text, s) {
					stop = true
				}
			}
			if stop {
				break
			}
		}
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("empty expression near %q", p.peek().text)
	}
	span := p.src[p.toks[start].start:p.toks[p.pos-1].end]
	return relop.ParseExpr(span, schema)
}

func parseStatement(s *Script, env map[string]*Dataset, cat Catalog, src string, stored *int) error {
	toks, err := tokenize(src)
	if err != nil {
		return err
	}
	p := &stmtParser{src: src, toks: toks}

	// Non-assignment forms first.
	if p.kw("split") {
		return parseSplit(s, env, p)
	}
	if p.kw("store") {
		from, err := p.word()
		if err != nil {
			return err
		}
		d, ok := env[from]
		if !ok {
			return fmt.Errorf("unknown relation %q", from)
		}
		if err := p.expectKw("into"); err != nil {
			return err
		}
		path, err := p.str()
		if err != nil {
			return err
		}
		s.Store(d, path)
		*stored++
		return p.end()
	}

	// NAME = <operator> ...
	name, err := p.word()
	if err != nil {
		return err
	}
	if !p.op("=") {
		return fmt.Errorf("expected = after %q", name)
	}
	d, err := parseOperator(s, env, cat, p)
	if err != nil {
		return err
	}
	env[name] = d
	return p.end()
}

func (p *stmtParser) end() error {
	if p.pos != len(p.toks) {
		return fmt.Errorf("trailing input near %q", p.peek().text)
	}
	return nil
}

func parseOperator(s *Script, env map[string]*Dataset, cat Catalog, p *stmtParser) (*Dataset, error) {
	rel := func() (*Dataset, error) {
		n, err := p.word()
		if err != nil {
			return nil, err
		}
		d, ok := env[n]
		if !ok {
			return nil, fmt.Errorf("unknown relation %q", n)
		}
		return d, nil
	}

	switch {
	case p.kw("load"):
		tn, err := p.str()
		if err != nil {
			return nil, err
		}
		t, ok := cat[strings.ToLower(tn)]
		if !ok {
			return nil, fmt.Errorf("unknown table %q", tn)
		}
		return s.Load(t), nil

	case p.kw("filter"):
		d, err := rel()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		pred, err := p.exprUntil(d.Schema())
		if err != nil {
			return nil, err
		}
		return d.Filter(pred), nil

	case p.kw("foreach"):
		d, err := rel()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("generate"); err != nil {
			return nil, err
		}
		var exprs []*relop.Expr
		var names []string
		var kinds []row.Kind
		for {
			startPos := p.pos
			e, err := p.exprUntil(d.Schema(), "as")
			if err != nil {
				return nil, err
			}
			n := fmt.Sprintf("c%d", len(names))
			k := row.KindFloat
			// A bare column keeps its name and kind.
			if p.pos == startPos+1 && p.toks[startPos].kind == "word" {
				idx := d.Schema().Index(p.toks[startPos].text)
				if idx >= 0 {
					n = baseName(d.Schema().Cols[idx].Name)
					k = d.Schema().Cols[idx].Kind
				}
			}
			if p.kw("as") {
				an, err := p.word()
				if err != nil {
					return nil, err
				}
				n = an
			}
			exprs = append(exprs, e)
			names = append(names, n)
			kinds = append(kinds, k)
			if !p.op(",") {
				break
			}
		}
		return d.ForEach(exprs, names, kinds), nil

	case p.kw("group"):
		d, err := rel()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		var keys []*relop.Expr
		var keyNames []string
		for {
			startPos := p.pos
			e, err := p.exprUntil(d.Schema(), "generate")
			if err != nil {
				return nil, err
			}
			n := fmt.Sprintf("k%d", len(keys))
			if p.toks[startPos].kind == "word" {
				n = baseName(p.toks[startPos].text)
			}
			keys = append(keys, e)
			keyNames = append(keyNames, n)
			if !p.op(",") {
				break
			}
		}
		if err := p.expectKw("generate"); err != nil {
			return nil, err
		}
		aggs, err := parseAggs(p, d.Schema())
		if err != nil {
			return nil, err
		}
		return d.GroupBy(keys, keyNames, aggs), nil

	case p.kw("join"), strings.EqualFold(p.peek().text, "skewjoin"):
		skew := p.kw("skewjoin")
		left, err := rel()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		lk, err := p.exprUntil(left.Schema())
		if err != nil {
			return nil, err
		}
		if !p.op(",") {
			return nil, fmt.Errorf("expected , between join sides")
		}
		right, err := rel()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		rk, err := p.exprUntil(right.Schema(), "partitions")
		if err != nil {
			return nil, err
		}
		parts := 0
		if p.kw("partitions") {
			parts, err = p.intLit()
			if err != nil {
				return nil, err
			}
		}
		if skew {
			return left.SkewJoin(right, []*relop.Expr{lk}, []*relop.Expr{rk}, parts), nil
		}
		return left.Join(right, []*relop.Expr{lk}, []*relop.Expr{rk}), nil

	case p.kw("order"):
		d, err := rel()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		var keys []*relop.Expr
		var desc []bool
		for {
			e, err := p.exprUntil(d.Schema(), "desc", "asc", "limit", "partitions")
			if err != nil {
				return nil, err
			}
			dsc := false
			if p.kw("desc") {
				dsc = true
			} else {
				p.kw("asc")
			}
			keys = append(keys, e)
			desc = append(desc, dsc)
			if !p.op(",") {
				break
			}
		}
		limit, parts := 0, 0
		if p.kw("limit") {
			if limit, err = p.intLit(); err != nil {
				return nil, err
			}
		}
		if p.kw("partitions") {
			if parts, err = p.intLit(); err != nil {
				return nil, err
			}
		}
		return d.OrderBy(keys, desc, limit, parts), nil

	case p.kw("distinct"):
		d, err := rel()
		if err != nil {
			return nil, err
		}
		return d.Distinct(), nil

	case p.kw("union"):
		first, err := rel()
		if err != nil {
			return nil, err
		}
		var rest []*Dataset
		for p.op(",") {
			d, err := rel()
			if err != nil {
				return nil, err
			}
			rest = append(rest, d)
		}
		return first.Union(rest...), nil
	}
	return nil, fmt.Errorf("unknown operator near %q", p.peek().text)
}

// parseAggs parses "func(expr|*) AS name, ...".
func parseAggs(p *stmtParser, schema row.Schema) ([]relop.AggDef, error) {
	var out []relop.AggDef
	for {
		fn, err := p.word()
		if err != nil {
			return nil, err
		}
		fn = strings.ToLower(fn)
		switch fn {
		case "count", "sum", "avg", "min", "max":
		default:
			return nil, fmt.Errorf("unknown aggregate %q", fn)
		}
		if !p.op("(") {
			return nil, fmt.Errorf("expected ( after %s", fn)
		}
		var arg *relop.Expr
		if p.op("*") {
			if fn != "count" {
				return nil, fmt.Errorf("%s(*) is not supported", fn)
			}
		} else {
			arg, err = p.exprUntil(schema)
			if err != nil {
				return nil, err
			}
		}
		if !p.op(")") {
			return nil, fmt.Errorf("expected ) after %s argument", fn)
		}
		name := fmt.Sprintf("%s_%d", fn, len(out))
		if p.kw("as") {
			if name, err = p.word(); err != nil {
				return nil, err
			}
		}
		out = append(out, relop.AggDef{Func: fn, Arg: arg, Name: name})
		if !p.op(",") {
			return out, nil
		}
	}
}

// parseSplit handles SPLIT A INTO X IF e, Y IF e, ...
func parseSplit(s *Script, env map[string]*Dataset, p *stmtParser) error {
	from, err := p.word()
	if err != nil {
		return err
	}
	d, ok := env[from]
	if !ok {
		return fmt.Errorf("unknown relation %q", from)
	}
	if err := p.expectKw("into"); err != nil {
		return err
	}
	for {
		branch, err := p.word()
		if err != nil {
			return err
		}
		if err := p.expectKw("if"); err != nil {
			return err
		}
		pred, err := p.exprUntil(d.Schema())
		if err != nil {
			return err
		}
		env[branch] = d.Filter(pred)
		if !p.op(",") {
			break
		}
	}
	return p.end()
}

func baseName(qualified string) string {
	if i := strings.LastIndexByte(qualified, '.'); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}
