package pig

import (
	"testing"

	"tez/internal/am"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
)

func setup(t *testing.T) (*platform.Platform, *am.Session, *relop.Table, *relop.Table) {
	t.Helper()
	plat := platform.New(platform.Fast(4))
	users := &relop.Table{Name: "users", Schema: row.NewSchema("uid:int", "country", "age:int")}
	uRows := []row.Row{
		{row.Int(1), row.String("de"), row.Int(30)},
		{row.Int(2), row.String("us"), row.Int(25)},
		{row.Int(3), row.String("de"), row.Int(40)},
		{row.Int(4), row.String("fr"), row.Int(17)},
	}
	if err := relop.WriteTable(plat.FS, users, 2, uRows); err != nil {
		t.Fatal(err)
	}
	events := &relop.Table{Name: "events", Schema: row.NewSchema("uid:int", "kind", "n:int")}
	eRows := []row.Row{
		{row.Int(1), row.String("click"), row.Int(3)},
		{row.Int(1), row.String("view"), row.Int(7)},
		{row.Int(2), row.String("click"), row.Int(1)},
		{row.Int(3), row.String("view"), row.Int(2)},
		{row.Int(9), row.String("view"), row.Int(9)},
	}
	if err := relop.WriteTable(plat.FS, events, 2, eRows); err != nil {
		t.Fatal(err)
	}
	sess := am.NewSession(plat, am.Config{Name: "pig"})
	t.Cleanup(func() { sess.Close(); plat.Stop() })
	return plat, sess, users, events
}

func TestETLPipelineMultiOutput(t *testing.T) {
	plat, sess, users, events := setup(t)
	s := NewScript("etl")
	u := s.Load(users)
	e := s.Load(events)
	adults := u.Filter(relop.Cmp(">=", u.Col("age"), relop.LitInt(18)))
	joined := adults.Join(e, []*relop.Expr{adults.Col("uid")}, []*relop.Expr{e.Col("uid")})
	// joined schema: uid, country, age, uid, kind, n
	byCountry := joined.GroupBy(
		[]*relop.Expr{relop.Col(1)}, []string{"country"},
		[]relop.AggDef{{Func: "sum", Arg: relop.Col(5), Name: "events"}})
	s.Store(byCountry, "/out/by_country")
	// Second output from the same upstream: distinct event kinds.
	kinds := e.ForEach([]*relop.Expr{e.Col("kind")}, []string{"kind"}, []row.Kind{row.KindString}).Distinct()
	s.Store(kinds, "/out/kinds")

	if res, err := s.RunTez(sess); err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	byC, err := relop.ReadStored(plat.FS, "/out/by_country")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, r := range byC {
		got[r[0].Str] = r[1].AsFloat()
	}
	if got["de"] != 12 || got["us"] != 1 || len(got) != 2 {
		t.Fatalf("by_country = %v", got)
	}
	ks, err := relop.ReadStored(plat.FS, "/out/kinds")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 {
		t.Fatalf("kinds = %v", ks)
	}
}

func TestSplitBranchesShareScan(t *testing.T) {
	plat, sess, users, _ := setup(t)
	s := NewScript("split")
	u := s.Load(users)
	branches := u.Split(
		relop.Eq(u.Col("country"), relop.LitString("de")),
		relop.Not(relop.Eq(u.Col("country"), relop.LitString("de"))),
	)
	s.Store(branches[0], "/out/de")
	s.Store(branches[1], "/out/rest")
	if res, err := s.RunTez(sess); err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	de, _ := relop.ReadStored(plat.FS, "/out/de")
	rest, _ := relop.ReadStored(plat.FS, "/out/rest")
	if len(de) != 2 || len(rest) != 2 {
		t.Fatalf("split sizes: de=%d rest=%d", len(de), len(rest))
	}
	// One DAG, one scan stage: the split shares the load.
	d, err := relop.EmitDAGOnly(s.Exec, "inspect", s.Roots())
	if err != nil {
		t.Fatal(err)
	}
	scans := 0
	for _, v := range d.Vertices {
		if len(v.Sources) > 0 {
			scans++
		}
	}
	if scans != 1 {
		t.Fatalf("split compiled to %d scan vertices, want 1 shared", scans)
	}
}

func TestOrderByGlobal(t *testing.T) {
	plat, sess, users, _ := setup(t)
	s := NewScript("order")
	u := s.Load(users)
	ordered := u.OrderBy([]*relop.Expr{u.Col("age")}, []bool{false}, 0, 2)
	s.Store(ordered, "/out/ordered")
	if res, err := s.RunTez(sess); err != nil || res.Status != am.DAGSucceeded {
		t.Fatalf("%v %v", res.Status, err)
	}
	rows, err := relop.ReadStored(plat.FS, "/out/ordered")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if row.Compare(rows[i-1][2], rows[i][2]) > 0 {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestPigTezAndMRAgree(t *testing.T) {
	plat, _, users, events := setup(t)
	build := func(out string) *Script {
		s := NewScript("agree")
		u := s.Load(users)
		e := s.Load(events)
		j := u.Join(e, []*relop.Expr{u.Col("uid")}, []*relop.Expr{e.Col("uid")})
		agg := j.GroupBy([]*relop.Expr{relop.Col(0)}, []string{"uid"},
			[]relop.AggDef{{Func: "count", Name: "n"}})
		s.Store(agg, out)
		return s
	}
	sess := am.NewSession(plat, am.Config{Name: "agree"})
	defer sess.Close()
	if _, err := build("/out/agree-tez").RunTez(sess); err != nil {
		t.Fatal(err)
	}
	if _, err := build("/out/agree-mr").RunMR(plat, am.Config{Name: "agree-mr"}); err != nil {
		t.Fatal(err)
	}
	a, _ := relop.ReadStored(plat.FS, "/out/agree-tez")
	b, _ := relop.ReadStored(plat.FS, "/out/agree-mr")
	if len(a) != len(b) || len(a) != 3 {
		t.Fatalf("tez %d rows, mr %d rows", len(a), len(b))
	}
}

func TestEmptyScriptRejected(t *testing.T) {
	plat := platform.New(platform.Fast(2))
	defer plat.Stop()
	sess := am.NewSession(plat, am.Config{Name: "x"})
	defer sess.Close()
	s := NewScript("empty")
	if _, err := s.RunTez(sess); err == nil {
		t.Fatal("empty script accepted")
	}
}
