package mailbox

import (
	"sync"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100; i++ {
		m.Put(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := m.Get()
		if !ok || v != i {
			t.Fatalf("Get = %d,%v; want %d,true", v, ok, i)
		}
	}
}

func TestGetBlocksUntilPut(t *testing.T) {
	m := New[string]()
	done := make(chan string)
	go func() {
		v, _ := m.Get()
		done <- v
	}()
	m.Put("hello")
	if got := <-done; got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestCloseUnblocksAndDrains(t *testing.T) {
	m := New[int]()
	m.Put(1)
	m.Close()
	if v, ok := m.Get(); !ok || v != 1 {
		t.Fatalf("Get after close = %d,%v; want 1,true", v, ok)
	}
	if _, ok := m.Get(); ok {
		t.Fatal("Get on closed empty mailbox returned ok")
	}
	m.Put(2) // no-op
	if m.Len() != 0 {
		t.Fatal("Put after close enqueued")
	}
	m.Close() // idempotent
}

func TestTryGet(t *testing.T) {
	m := New[int]()
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on empty returned ok")
	}
	m.Put(7)
	if v, ok := m.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	m := New[int]()
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m.Put(p*perProducer + i)
			}
		}(p)
	}
	go func() {
		wg.Wait()
		m.Close()
	}()
	seen := make(map[int]bool)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := m.Get()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate item %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", len(seen), producers*perProducer)
	}
}
