package mailbox

import (
	"sync"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100; i++ {
		m.Put(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := m.Get()
		if !ok || v != i {
			t.Fatalf("Get = %d,%v; want %d,true", v, ok, i)
		}
	}
}

func TestGetBlocksUntilPut(t *testing.T) {
	m := New[string]()
	done := make(chan string)
	go func() {
		v, _ := m.Get()
		done <- v
	}()
	m.Put("hello")
	if got := <-done; got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestCloseUnblocksAndDrains(t *testing.T) {
	m := New[int]()
	m.Put(1)
	m.Close()
	if v, ok := m.Get(); !ok || v != 1 {
		t.Fatalf("Get after close = %d,%v; want 1,true", v, ok)
	}
	if _, ok := m.Get(); ok {
		t.Fatal("Get on closed empty mailbox returned ok")
	}
	m.Put(2) // no-op
	if m.Len() != 0 {
		t.Fatal("Put after close enqueued")
	}
	m.Close() // idempotent
}

func TestTryGet(t *testing.T) {
	m := New[int]()
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on empty returned ok")
	}
	m.Put(7)
	if v, ok := m.TryGet(); !ok || v != 7 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
}

// TestCloseWakesBlockedGet pins the teardown path: a Get parked on an
// empty mailbox must wake with ok=false the moment Close runs, not hang.
func TestCloseWakesBlockedGet(t *testing.T) {
	m := New[int]()
	const waiters = 4
	done := make(chan bool, waiters)
	var started sync.WaitGroup
	for i := 0; i < waiters; i++ {
		started.Add(1)
		go func() {
			started.Done()
			_, ok := m.Get()
			done <- ok
		}()
	}
	started.Wait()
	m.Close()
	for i := 0; i < waiters; i++ {
		if ok := <-done; ok {
			t.Fatal("Get woken by Close returned ok=true with no item")
		}
	}
}

// TestPutAfterCloseDuringTeardown models the AM teardown race: late
// producers (a task finishing after its DAG was torn down) keep Putting
// into a mailbox that was just closed — every Put must be a silent no-op,
// concurrently safe, and leave the drained mailbox empty.
func TestPutAfterCloseDuringTeardown(t *testing.T) {
	m := New[int]()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Put(p*200 + i)
			}
		}(p)
	}
	m.Close()
	wg.Wait()
	// Whatever raced in before Close drains in order; then ok=false forever.
	for {
		if _, ok := m.Get(); !ok {
			break
		}
	}
	m.Put(42)
	if m.Len() != 0 {
		t.Fatalf("Put after close enqueued; Len=%d", m.Len())
	}
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on closed drained mailbox returned ok")
	}
}

// TestLenTracksBacklog pins Len as the backlog gauge the AM dispatcher
// samples (AM_MAILBOX_BACKLOG_MAX).
func TestLenTracksBacklog(t *testing.T) {
	m := New[int]()
	for i := 1; i <= 32; i++ {
		m.Put(i)
		if m.Len() != i {
			t.Fatalf("Len after %d Puts = %d", i, m.Len())
		}
	}
	for i := 31; i >= 0; i-- {
		m.Get()
		if m.Len() != i {
			t.Fatalf("Len after drain to %d = %d", i, m.Len())
		}
	}
}

// TestPutAllGetAllBatch pins the batch APIs: PutAll preserves order
// against interleaved Puts, and GetAll drains the whole backlog into a
// reused buffer.
func TestPutAllGetAllBatch(t *testing.T) {
	m := New[int]()
	m.Put(1)
	m.PutAll([]int{2, 3, 4})
	m.PutAll(nil) // no-op
	m.Put(5)

	buf, ok := m.GetAll(nil)
	if !ok || len(buf) != 5 {
		t.Fatalf("GetAll = %v,%v; want 5 items", buf, ok)
	}
	for i, v := range buf {
		if v != i+1 {
			t.Fatalf("batch[%d] = %d", i, v)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len after GetAll = %d", m.Len())
	}
	// Buffer reuse: the same backing array comes back when it fits.
	m.PutAll([]int{6, 7})
	buf2, ok := m.GetAll(buf)
	if !ok || len(buf2) != 2 || buf2[0] != 6 || buf2[1] != 7 {
		t.Fatalf("GetAll reuse = %v,%v", buf2, ok)
	}
	if cap(buf2) != cap(buf) || &buf2[0] != &buf[0] {
		t.Fatal("GetAll did not reuse the caller's buffer")
	}
	// Closed + empty: ok=false.
	m.Close()
	if _, ok := m.GetAll(buf2); ok {
		t.Fatal("GetAll on closed empty mailbox returned ok")
	}
}

// TestGetAllBlocksUntilPut pins GetAll's blocking contract: it parks like
// Get and wakes with the full batch available at wake time.
func TestGetAllBlocksUntilPut(t *testing.T) {
	m := New[int]()
	done := make(chan []int)
	go func() {
		batch, _ := m.GetAll(nil)
		done <- batch
	}()
	m.PutAll([]int{10, 11, 12})
	got := <-done
	if len(got) < 1 || got[0] != 10 {
		t.Fatalf("GetAll woke with %v", got)
	}
}

// TestPopReleasesSlotsAndCompacts is the alloc/retention regression for
// the old `items = items[1:]` pop, which pinned the backing array forever:
// every popped head slot stays reachable via the slice backing even after
// the consumer moved on. The new head-cursor pop must (a) zero popped
// slots immediately so their referents are collectable, and (b) compact so
// retained capacity tracks the live backlog, not the total ever enqueued.
func TestPopReleasesSlotsAndCompacts(t *testing.T) {
	m := New[*[1024]byte]()
	const total = 4096
	for i := 0; i < total; i++ {
		m.Put(&[1024]byte{})
		if _, ok := m.Get(); !ok {
			t.Fatal("Get failed")
		}
		// Steady-state backlog of zero: retained capacity must stay small.
		m.mu.Lock()
		if c := cap(m.items); c > 4*compactThreshold {
			m.mu.Unlock()
			t.Fatalf("retained capacity %d after %d put/get cycles; head-cursor compaction broken", c, i+1)
		}
		// Every dead slot must be zeroed (no pinned referents).
		for j := 0; j < m.head; j++ {
			if m.items[j] != nil {
				m.mu.Unlock()
				t.Fatalf("popped slot %d still pins its item", j)
			}
		}
		m.mu.Unlock()
	}
}

// TestRetentionWithStandingBacklog: a deep backlog drains without
// quadratic compaction churn and ends with bounded capacity.
func TestRetentionWithStandingBacklog(t *testing.T) {
	m := New[int]()
	const depth = 10000
	for i := 0; i < depth; i++ {
		m.Put(i)
	}
	for i := 0; i < depth; i++ {
		v, ok := m.Get()
		if !ok || v != i {
			t.Fatalf("Get = %d,%v; want %d", v, ok, i)
		}
	}
	m.mu.Lock()
	c, h, l := cap(m.items), m.head, len(m.items)
	m.mu.Unlock()
	if l-h != 0 {
		t.Fatalf("backlog %d after full drain", l-h)
	}
	if c > 2*depth {
		t.Fatalf("capacity grew far past the high-water mark: %d", c)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	m := New[int]()
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m.Put(p*perProducer + i)
			}
		}(p)
	}
	go func() {
		wg.Wait()
		m.Close()
	}()
	seen := make(map[int]bool)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := m.Get()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate item %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d items, want %d", len(seen), producers*perProducer)
	}
}
