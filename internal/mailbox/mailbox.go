// Package mailbox provides an unbounded FIFO queue for decoupling event
// producers from consumers. The resource manager, application master and
// tasks all exchange control-plane events through mailboxes so that a slow
// consumer can never deadlock a producer — the property Tez gets from its
// asynchronous, push-based event plane (§3.3 of the paper).
package mailbox

import "sync"

// Mailbox is an unbounded FIFO of T. The zero value is NOT ready; use New.
//
// The queue is a slice with a head cursor: Get advances head instead of
// re-slicing, so popped slots are released (zeroed) immediately and the
// backing array is compacted once the dead prefix dominates — a long-lived
// mailbox retains O(backlog) memory, not O(total ever enqueued).
type Mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	head   int // items[head:] are live; items[:head] are zeroed dead slots
	closed bool
}

// compactThreshold is the dead-prefix size past which the live tail is
// copied down and the cursor reset. Compaction also requires the dead
// prefix to outweigh the live tail, so a deep steady-state backlog is not
// repeatedly memmoved.
const compactThreshold = 32

// New returns an empty, open mailbox.
func New[T any]() *Mailbox[T] {
	m := &Mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Put enqueues v. Put on a closed mailbox is a silent no-op, so that
// late producers (e.g. a task finishing after its DAG was torn down)
// need no coordination.
func (m *Mailbox[T]) Put(v T) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.items = append(m.items, v)
	m.cond.Signal()
}

// PutAll enqueues every element of vs under a single lock acquisition and
// wakes the consumer once — batched event delivery for producers that emit
// in waves (scheduler passes, movement replay). A nil/empty slice and a
// closed mailbox are no-ops. The mailbox copies the elements; the caller
// keeps ownership of vs.
func (m *Mailbox[T]) PutAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.items = append(m.items, vs...)
	m.cond.Signal()
}

// popLocked removes and returns the head item. Caller guarantees at least
// one live item.
func (m *Mailbox[T]) popLocked() T {
	var zero T
	v := m.items[m.head]
	m.items[m.head] = zero // release the reference now, not at compaction
	m.head++
	m.maybeCompactLocked()
	return v
}

// maybeCompactLocked copies the live tail over the dead prefix once the
// prefix is both large and at least as big as the tail, bounding retained
// capacity to O(live) amortised.
func (m *Mailbox[T]) maybeCompactLocked() {
	if m.head < compactThreshold || m.head < len(m.items)-m.head {
		return
	}
	live := copy(m.items, m.items[m.head:])
	var zero T
	for i := live; i < len(m.items); i++ {
		m.items[i] = zero
	}
	m.items = m.items[:live]
	m.head = 0
}

// Get blocks until an item is available or the mailbox is closed and
// drained. ok is false only when closed and empty.
func (m *Mailbox[T]) Get() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.items) && !m.closed {
		m.cond.Wait()
	}
	if m.head == len(m.items) {
		var zero T
		return zero, false
	}
	return m.popLocked(), true
}

// GetAll blocks like Get, then drains every queued item into buf (which is
// truncated and reused — pass the previous call's return value to amortise
// allocation). ok is false only when the mailbox is closed and empty.
// One lock round-trip hands the consumer the whole backlog, the
// batch-delivery dual of PutAll.
func (m *Mailbox[T]) GetAll(buf []T) (batch []T, ok bool) {
	buf = buf[:0]
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.items) && !m.closed {
		m.cond.Wait()
	}
	if m.head == len(m.items) {
		return buf, false
	}
	buf = append(buf, m.items[m.head:]...)
	var zero T
	for i := m.head; i < len(m.items); i++ {
		m.items[i] = zero
	}
	m.items = m.items[:0]
	m.head = 0
	return buf, true
}

// TryGet returns an item if one is immediately available.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.head == len(m.items) {
		var zero T
		return zero, false
	}
	return m.popLocked(), true
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items) - m.head
}

// Close wakes all blocked Gets. Items already queued can still be drained.
// Close is idempotent.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.cond.Broadcast()
}
