// Package mailbox provides an unbounded FIFO queue for decoupling event
// producers from consumers. The resource manager, application master and
// tasks all exchange control-plane events through mailboxes so that a slow
// consumer can never deadlock a producer — the property Tez gets from its
// asynchronous, push-based event plane (§3.3 of the paper).
package mailbox

import "sync"

// Mailbox is an unbounded FIFO of T. The zero value is NOT ready; use New.
type Mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
}

// New returns an empty, open mailbox.
func New[T any]() *Mailbox[T] {
	m := &Mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Put enqueues v. Put on a closed mailbox is a silent no-op, so that
// late producers (e.g. a task finishing after its DAG was torn down)
// need no coordination.
func (m *Mailbox[T]) Put(v T) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.items = append(m.items, v)
	m.cond.Signal()
}

// Get blocks until an item is available or the mailbox is closed and
// drained. ok is false only when closed and empty.
func (m *Mailbox[T]) Get() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		var zero T
		return zero, false
	}
	v = m.items[0]
	m.items = m.items[1:]
	return v, true
}

// TryGet returns an item if one is immediately available.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.items) == 0 {
		var zero T
		return zero, false
	}
	v = m.items[0]
	m.items = m.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// Close wakes all blocked Gets. Items already queued can still be drained.
// Close is idempotent.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.cond.Broadcast()
}
