// Package plugin provides named descriptors with opaque binary payloads —
// the Tez configuration mechanism (§3.2, "IPO Configuration"): every
// application-supplied entity (processor, input, output, edge manager,
// vertex manager, initializer, committer) is specified in the DAG as a
// descriptor whose name selects an implementation and whose payload
// configures (or effectively injects) the application code.
//
// The JVM loads such entities by class name; Go has no dynamic class
// loading, so implementations register factories in a process-wide registry
// keyed by (kind, name). Payloads are encoded with encoding/gob.
package plugin

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
)

// Kind partitions the registry namespace.
type Kind string

// Registry kinds for every pluggable Tez entity.
const (
	KindProcessor     Kind = "processor"
	KindInput         Kind = "input"
	KindOutput        Kind = "output"
	KindEdgeManager   Kind = "edgemanager"
	KindVertexManager Kind = "vertexmanager"
	KindInitializer   Kind = "initializer"
	KindCommitter     Kind = "committer"
)

// Descriptor names an implementation plus its opaque configuration. The
// zero Descriptor means "unset".
type Descriptor struct {
	Name    string
	Payload []byte
}

// IsZero reports whether the descriptor is unset.
func (d Descriptor) IsZero() bool { return d.Name == "" }

// Desc builds a descriptor, gob-encoding payload (nil payload allowed).
func Desc(name string, payload any) Descriptor {
	d := Descriptor{Name: name}
	if payload != nil {
		d.Payload = MustEncode(payload)
	}
	return d
}

var (
	regMu    sync.RWMutex
	registry = map[Kind]map[string]any{}
)

// Register installs a factory for (kind, name). Factories are usually
// registered from init functions; re-registration replaces (tests).
// The factory's concrete type is owned by the consuming package.
func Register(kind Kind, name string, factory any) {
	regMu.Lock()
	defer regMu.Unlock()
	m := registry[kind]
	if m == nil {
		m = map[string]any{}
		registry[kind] = m
	}
	m[name] = factory
}

// Lookup returns the factory for (kind, name).
func Lookup(kind Kind, name string) (any, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[kind][name]
	if !ok {
		return nil, fmt.Errorf("plugin: no %s registered as %q", kind, name)
	}
	return f, nil
}

// Names lists registered names for a kind, sorted (diagnostics).
func Names(kind Kind) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []string
	for n := range registry[kind] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Encode gob-encodes v.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("plugin: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// MustEncode is Encode, panicking on error (payload structs are
// program-defined, so failure is a bug).
func MustEncode(v any) []byte {
	b, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Decode gob-decodes data into out (a pointer).
func Decode(data []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("plugin: decode into %T: %w", out, err)
	}
	return nil
}
