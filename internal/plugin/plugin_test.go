package plugin

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisterLookup(t *testing.T) {
	type factory func() int
	Register(KindProcessor, "pt.one", factory(func() int { return 1 }))
	Register(KindProcessor, "pt.two", factory(func() int { return 2 }))
	Register(KindInput, "pt.one", factory(func() int { return 3 })) // same name, other kind

	f, err := Lookup(KindProcessor, "pt.one")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.(factory)(); got != 1 {
		t.Fatalf("got %d", got)
	}
	f, err = Lookup(KindInput, "pt.one")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.(factory)(); got != 3 {
		t.Fatalf("kinds collided: got %d", got)
	}
	if _, err := Lookup(KindOutput, "pt.one"); err == nil {
		t.Fatal("lookup across kinds succeeded")
	}
	if _, err := Lookup(KindProcessor, "pt.missing"); err == nil {
		t.Fatal("missing lookup succeeded")
	}

	names := Names(KindProcessor)
	found := 0
	for _, n := range names {
		if strings.HasPrefix(n, "pt.") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("Names = %v", names)
	}
	// Re-registration replaces.
	Register(KindProcessor, "pt.one", factory(func() int { return 11 }))
	f, _ = Lookup(KindProcessor, "pt.one")
	if got := f.(factory)(); got != 11 {
		t.Fatalf("re-registration ignored: %d", got)
	}
}

func TestDescriptor(t *testing.T) {
	d := Desc("x", nil)
	if d.IsZero() || d.Payload != nil {
		t.Fatalf("Desc = %+v", d)
	}
	if !(Descriptor{}).IsZero() {
		t.Fatal("zero descriptor not zero")
	}
	type cfg struct {
		A int
		B string
	}
	d2 := Desc("y", cfg{A: 7, B: "hi"})
	var got cfg
	if err := Decode(d2.Payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.A != 7 || got.B != "hi" {
		t.Fatalf("decoded %+v", got)
	}
	if err := Decode([]byte("garbage"), &got); err == nil {
		t.Fatal("garbage decoded")
	}
}

// Property: Encode/Decode round-trips arbitrary payload structs.
func TestQuickEncodeDecode(t *testing.T) {
	type payload struct {
		N  int64
		S  string
		Bs []byte
		M  map[string]int
	}
	f := func(n int64, s string, bs []byte) bool {
		in := payload{N: n, S: s, Bs: bs, M: map[string]int{s: int(n)}}
		data, err := Encode(in)
		if err != nil {
			return false
		}
		var out payload
		if err := Decode(data, &out); err != nil {
			return false
		}
		return out.N == in.N && out.S == in.S &&
			string(out.Bs) == string(in.Bs) && out.M[s] == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
