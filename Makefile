GO ?= go

.PHONY: build vet test race check bench chaos trace

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the tier-1 gate plus the race detector; CI runs exactly this.
check: build vet race

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

# chaos runs the seed-pinned fault-injection suite under the race
# detector: the determinism contract, the blacklisting/casualty paths in
# the AM, and the end-to-end seeds×DAGs matrix (results must be identical
# to a fault-free run). Seeds are fixed in the tests, so failures
# reproduce exactly.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/
	$(GO) test -race -count=1 -run 'TestChaos|TestBlacklist|TestAttemptFailureRacingNodeLoss|TestDecommissionDrain' ./internal/am/

# trace runs a sample wordcount with the timeline journal attached and
# writes trace.json (Chrome trace-event format — load it in Perfetto or
# chrome://tracing) plus the raw journal as trace.jsonl.
trace:
	$(GO) run ./cmd/tez-timeline -trace trace.json -jsonl trace.jsonl
