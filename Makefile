GO ?= go

.PHONY: build vet lint test race check bench bench-shuffle bench-relop bench-controlplane bench-service bench-graph fuzz-short chaos trace

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint: go vet, the control-plane invariant (every lifecycle state change
# in internal/am must flow through the internal/fsm transition tables —
# no raw `.state = ...` assignments), the data-plane invariant (the batch
# kernels must never fall back to per-record expression evaluation — no
# `.Eval(` in the vectorized files), the shuffle publication invariant
# (all map outputs register through library.RegisterShuffleOutput so the
# pipelined spill protocol has a single choke point — no direct
# `Shuffle.Register` outside internal/library), and staticcheck when installed
# (skipped gracefully where it is not; CI does not install it).
lint: vet
	@if grep -rnE '\.state[[:space:]]*=[^=]' internal/am --include='*.go'; then \
		echo 'lint: raw lifecycle state assignment in internal/am (use the fsm tables)'; exit 1; \
	fi
	@if grep -nE '\.Eval\(' internal/relop/vexpr.go internal/relop/vexec.go internal/relop/vagg.go; then \
		echo 'lint: per-record Eval in the batch kernels (use the columnar kernels)'; exit 1; \
	fi
	@if grep -rnE 'Shuffle\.Register\(' --include='*.go' --exclude='*_test.go' . \
		| grep -vE '^\./internal/(library|shuffle)/'; then \
		echo 'lint: direct shuffle Register outside internal/library (use library.RegisterShuffleOutput)'; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo 'lint: staticcheck not installed, skipping'; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the tier-1 gate plus lint and the race detector; CI runs
# exactly this.
check: build lint race

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

# bench-shuffle measures the shuffle data plane: the go-bench view of the
# sort/merge ablations plus the grouped-read allocation benchmark, then
# the structured run that persists BENCH_shuffle.json (ns/op, B/op,
# allocs/op for serial-boxed vs arena vs arena+spill vs arena+flate, the
# end-to-end codec rows, and the pipelined-vs-barrier publication
# ablation at 1/4/16 spills per producer). CI uploads the JSON as an
# artifact.
bench-shuffle:
	$(GO) test -run XXX -bench BenchmarkGroupedRead -benchmem ./internal/library/
	$(GO) run ./cmd/tez-bench -exp shuffle-sort,shuffle-codec,shuffle-pipeline -shuffle-json BENCH_shuffle.json

# bench-relop measures the vectorization ablation: filter / project /
# hashjoin / aggregate kernels row-at-a-time vs columnar batches
# (~200k rows per op through the real emit pipeline), then the Hive
# TPC-H-derived and Pig workloads end to end under the row engine, the
# columnar engine and columnar+flate — all three must commit
# byte-identical output. Persists BENCH_relop.json; CI uploads it as an
# artifact.
bench-relop:
	$(GO) run ./cmd/tez-bench -exp relop -relop-json BENCH_relop.json

# bench-controlplane drives the scheduler at 10k simulated nodes, the
# event plane at 1M events, and a 100k-task DAG end to end, comparing
# against the checked-in pre-optimisation baseline (PR 6).
bench-controlplane:
	$(GO) run ./cmd/tez-bench -exp controlplane -controlplane-json BENCH_controlplane.json

# bench-service floods the multi-tenant DAG service with ≥1000 small DAGs
# from 4 weighted tenants through bounded admission queues (typed
# rejections must engage) and persists throughput + p50/p99 to
# BENCH_service.json. CI uploads the JSON as an artifact.
bench-service:
	$(GO) run ./cmd/tez-bench -exp service -service-json BENCH_service.json

# bench-graph runs the BSP graph engine: PageRank with the registry-cached
# vs cold-load ablation (identical fixed-horizon runs, the only difference
# is whether compute tasks may reuse cached partition snapshots), plus
# connected components and SSSP with vote-to-halt termination. Persists
# supersteps/sec, messages/sec and the ablation to BENCH_graph.json; CI
# uploads the JSON as an artifact.
bench-graph:
	$(GO) run ./cmd/tez-bench -exp graph -graph-json BENCH_graph.json

# fuzz-short gives the record-framing decoders a brief coverage-guided
# shake on every run (the checked-in corpus under testdata/fuzz replays
# regardless, as ordinary tests).
fuzz-short:
	$(GO) test -run XXX -fuzz FuzzDecodeRecord -fuzztime 5s ./internal/library/
	$(GO) test -run XXX -fuzz FuzzBufferReader -fuzztime 5s ./internal/library/
	$(GO) test -run XXX -fuzz FuzzDMInfo -fuzztime 5s ./internal/library/

# chaos runs the seed-pinned fault-injection suite under the race
# detector: the determinism contract, the blacklisting/casualty paths in
# the AM, and the end-to-end seeds×DAGs matrix (results must be identical
# to a fault-free run). Seeds are fixed in the tests, so failures
# reproduce exactly.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/
	$(GO) test -race -count=1 -run 'TestChaos|TestBlacklist|TestAttemptFailureRacingNodeLoss|TestDecommissionDrain' ./internal/am/

# trace runs a sample wordcount with the timeline journal attached and
# writes trace.json (Chrome trace-event format — load it in Perfetto or
# chrome://tracing) plus the raw journal as trace.jsonl.
trace:
	$(GO) run ./cmd/tez-timeline -trace trace.json -jsonl trace.jsonl
