GO ?= go

.PHONY: build vet test race check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the tier-1 gate plus the race detector; CI runs exactly this.
check: build vet race

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .
