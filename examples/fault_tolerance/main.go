// fault_tolerance: a guided tour of §4.3. The same word-count DAG is run
// three times on a secure cluster while we injure the platform:
//
//  1. a whole machine dies mid-run — its completed map outputs are lost,
//     the AM proactively re-executes them and the DAG still succeeds;
//
//  2. an environment-stuck straggler is rescued by speculation;
//
//  3. the AM itself "dies" between the two stages of a DAG and a fresh AM
//     recovers from the checkpoint, re-running only the unfinished stage.
//
//     go run ./examples/fault_tolerance
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"tez/internal/am"
	"tez/internal/cluster"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/runtime"
	"tez/internal/shuffle"
)

func init() {
	library.RegisterMapFunc("ft.tokenize", func(_, line []byte, out runtime.KVWriter) error {
		for _, w := range strings.Fields(string(line)) {
			if err := out.Write([]byte(w), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	library.RegisterReduceFunc("ft.sum", func(k []byte, vs [][]byte, out runtime.KVWriter) error {
		return out.Write(k, []byte(strconv.Itoa(len(vs))))
	})
	// A reduce that dawdles long enough for us to shoot a node.
	library.RegisterReduceFunc("ft.slowsum", func(k []byte, vs [][]byte, out runtime.KVWriter) error {
		time.Sleep(10 * time.Millisecond)
		return out.Write(k, []byte(strconv.Itoa(len(vs))))
	})
	runtime.RegisterProcessor("ft.straggler", func() runtime.Processor { return &stuckOnce{} })
}

// stuckOnce hangs the first attempt of task 0 (an environment-induced
// straggler); every other attempt finishes instantly.
type stuckOnce struct{ ctx *runtime.Context }

func (p *stuckOnce) Initialize(ctx *runtime.Context) error { p.ctx = ctx; return nil }
func (p *stuckOnce) Run(_ map[string]runtime.Input, out map[string]runtime.Output) error {
	if p.ctx.Meta.Task == 0 && p.ctx.Meta.Attempt == 0 {
		select {
		case <-p.ctx.Stop:
			return nil
		case <-time.After(5 * time.Second):
			return fmt.Errorf("straggler hit its timeout")
		}
	}
	w, err := out["sink"].Writer()
	if err != nil {
		return err
	}
	return w.(runtime.KVWriter).Write([]byte(fmt.Sprintf("t%d", p.ctx.Meta.Task)), []byte("done"))
}
func (p *stuckOnce) Close() error { return nil }

func wordCount(name, in, out, reduceFn string, reducers int) *dag.DAG {
	d := dag.New(name)
	m := d.AddVertex("map", plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "ft.tokenize"}), -1)
	m.Sources = []dag.DataSource{{
		Name:        "text",
		Input:       plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{Paths: []string{in}}),
	}}
	r := d.AddVertex("reduce", plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: reduceFn}), reducers)
	r.Sinks = []dag.DataSink{{
		Name:      "counts",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: out}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: out}),
	}}
	d.Connect(m, r, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})
	return d
}

func check(out map[string]int) string {
	if out["tez"] == 400 && out["dag"] == 200 {
		return "output correct"
	}
	return fmt.Sprintf("OUTPUT WRONG: %v", out)
}

func readCounts(plat *platform.Platform, out string) map[string]int {
	res := map[string]int{}
	for _, f := range plat.FS.List(out + "/part-") {
		data, err := plat.FS.ReadFile(f, "")
		if err != nil {
			log.Fatal(err)
		}
		r := library.NewPaddedReader(data)
		for r.Next() {
			n, _ := strconv.Atoi(string(r.Value()))
			res[string(r.Key())] += n
		}
	}
	return res
}

func main() {
	plat := platform.New(platform.Default(6))
	defer plat.Stop()
	plat.EnableSecurity() // §4.3: per-DAG tokens guard intermediate data

	w, err := library.CreateRecordFile(plat.FS, "/in/text", plat.FS.LiveNodes()[0])
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		_ = w.Write(nil, []byte("tez dag tez"))
	}
	_ = w.Close()

	// --- 1. Node failure mid-run -------------------------------------
	fmt.Println("1) whole-node failure during the reduce phase")
	sess := am.NewSession(plat, am.Config{Name: "ft"})
	h, err := sess.Submit(wordCount("wc-nodeloss", "/in/text", "/out/nodeloss", "ft.slowsum", 4))
	if err != nil {
		log.Fatal(err)
	}
	// Kill the node holding the first registered map output.
	var victim string
	for victim == "" {
		id := shuffle.OutputID{DAG: h.ID(), Vertex: "map", Name: "reduce", Task: 0, Attempt: 0}
		if n, ok := plat.Shuffle.Node(id); ok {
			victim = n
		}
		time.Sleep(500 * time.Microsecond)
	}
	plat.FailNode(cluster.NodeID(victim))
	fmt.Printf("   killed %s while reducers were fetching\n", victim)
	res := h.Wait()
	fmt.Printf("   DAG %s; tasks re-executed: %d; %s\n\n",
		res.Status, res.Counters.Get("TASKS_REEXECUTED"), check(readCounts(plat, "/out/nodeloss")))
	sess.Close()

	// --- 2. Straggler + speculation ----------------------------------
	fmt.Println("2) environment-stuck attempt rescued by speculation")
	specSess := am.NewSession(plat, am.Config{
		Name: "ft-spec", Speculation: true,
		SpeculationInterval: 2 * time.Millisecond, SpeculationFactor: 4, SpeculationMinCompleted: 3,
	})
	straggle := dag.New("straggler")
	v := straggle.AddVertex("work", plugin.Desc("ft.straggler", nil), 8)
	v.Sinks = []dag.DataSink{{
		Name:      "sink",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/out/spec"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/out/spec"}),
	}}
	res2, err := specSess.Run(straggle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   DAG %s in %v (straggler would have taken 5s); speculative attempts: %d\n\n",
		res2.Status, res2.Duration.Round(time.Millisecond),
		res2.Counters.Get("SPECULATIVE_ATTEMPTS"))
	specSess.Close()

	// --- 3. AM failure + recovery ------------------------------------
	fmt.Println("3) AM checkpoint/recovery")
	am1 := am.NewSession(plat, am.Config{Name: "ft-am1", CheckpointPath: "/_cp"})
	d := wordCount("wc-recover", "/in/text", "/out/recover", "ft.slowsum", 4)
	h3, err := am1.Submit(d)
	if err != nil {
		log.Fatal(err)
	}
	// "Crash" the AM once the map vertex has checkpointed.
	for len(plat.FS.List("/_cp/")) == 0 {
		time.Sleep(time.Millisecond)
	}
	h3.Kill("simulated AM crash")
	res3 := h3.Wait()
	am1.Close()
	if res3.Status == am.DAGSucceeded {
		fmt.Println("   (the DAG finished before the simulated crash — nothing to recover)")
		return
	}
	fmt.Println("   first AM crashed after the map vertex completed")

	am2 := am.NewSession(plat, am.Config{Name: "ft-am2", CheckpointPath: "/_cp"})
	defer am2.Close()
	h4, err := am2.Recover(wordCount("wc-recover", "/in/text", "/out/recover", "ft.slowsum", 4))
	if err != nil {
		log.Fatal(err)
	}
	res4 := h4.Wait()
	fmt.Printf("   recovered AM: %s; vertices recovered from checkpoint: %d; %s\n",
		res4.Status, res4.Counters.Get("VERTICES_RECOVERED"), check(readCounts(plat, "/out/recover")))
}
