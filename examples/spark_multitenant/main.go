// spark_multitenant: the Figure 12/13 scenario — five concurrent users
// partition their own dataset along a column on a shared cluster, first
// with service-daemon executors that hold containers for the application
// lifetime, then with ephemeral Tez tasks that release idle capacity.
//
//	go run ./examples/spark_multitenant
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"tez/internal/am"
	"tez/internal/cluster"
	"tez/internal/data"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/sparklike"
)

const (
	users = 5
	execs = 6
	rows  = 20000
)

func main() {
	for _, service := range []bool{true, false} {
		mode := "Tez (ephemeral tasks)"
		if service {
			mode = "service daemons (fixed executor pools)"
		}
		fmt.Printf("=== %s ===\n", mode)

		// Deliberately constrained: 4 nodes x 4 slots = 16 slots for an
		// aggregate daemon demand of 5 users x 6 executors = 30.
		cfg := platform.Default(4)
		cfg.Cluster.NodeResource = cluster.Resource{MemoryMB: 4096, VCores: 4}
		plat := platform.New(cfg)
		tables := make([]*relop.Table, users)
		for u := range tables {
			t, err := data.GenZipfPairs(plat.FS, fmt.Sprintf("li%d", u), rows, 50, 1.1, int64(u+1))
			if err != nil {
				log.Fatal(err)
			}
			tables[u] = t
		}

		lat := make([]time.Duration, users)
		var wg sync.WaitGroup
		for u := 0; u < users; u++ {
			u := u
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(time.Duration(u) * 5 * time.Millisecond)
				name := fmt.Sprintf("user-%d", u+1)
				job := sparklike.PartitionJob{
					Table: tables[u], KeyCol: 0, Partitions: 4,
					OutPath: fmt.Sprintf("/out/%s", name),
				}
				start := time.Now()
				if service {
					svc, err := sparklike.StartService(plat, name, execs,
						cluster.Resource{MemoryMB: 1024, VCores: 1}, 100*time.Millisecond)
					if err != nil {
						log.Fatal(err)
					}
					if err := svc.RunPartition("job", job); err != nil {
						log.Fatal(err)
					}
					svc.Close()
					lat[u] = time.Since(start)
					return
				}
				sess := am.NewSession(plat, am.Config{
					Name:                 name,
					ContainerIdleRelease: 10 * time.Millisecond,
				})
				defer sess.Close()
				if err := sparklike.RunPartitionTez(sess, "job", job); err != nil {
					log.Fatal(err)
				}
				lat[u] = time.Since(start)
			}()
		}
		wg.Wait()

		var total time.Duration
		for u, l := range lat {
			fmt.Printf("  user-%d latency: %v\n", u+1, l.Round(time.Millisecond))
			total += l
		}
		fmt.Printf("  mean: %v\n\n", (total / users).Round(time.Millisecond))
		plat.Stop()
	}
	fmt.Println("ephemeral tasks release capacity between waves, so late users are not starved")
}
