// Quickstart: the canonical WordCount DAG of the paper's Figure 4, built
// directly against the Tez DAG + Runtime APIs and executed on the
// simulated YARN cluster.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"tez/internal/am"
	"tez/internal/dag"
	"tez/internal/library"
	"tez/internal/platform"
	"tez/internal/plugin"
	"tez/internal/runtime"
)

func init() {
	// User code: a map function and a reduce function, registered by name
	// and selected through the processors' opaque payloads (§3.2).
	library.RegisterMapFunc("wc.tokenize", func(_, line []byte, out runtime.KVWriter) error {
		for _, w := range strings.Fields(string(line)) {
			if err := out.Write([]byte(strings.ToLower(w)), []byte("1")); err != nil {
				return err
			}
		}
		return nil
	})
	library.RegisterReduceFunc("wc.sum", func(word []byte, counts [][]byte, out runtime.KVWriter) error {
		return out.Write(word, []byte(strconv.Itoa(len(counts))))
	})
}

func main() {
	// A simulated Hadoop cluster: YARN-like RM + DFS + shuffle service.
	plat := platform.New(platform.Default(4))
	defer plat.Stop()

	// Put some text into the DFS.
	w, err := library.CreateRecordFile(plat.FS, "/input/shakespeare", plat.FS.LiveNodes()[0])
	if err != nil {
		log.Fatal(err)
	}
	lines := []string{
		"to be or not to be that is the question",
		"whether tis nobler in the mind to suffer",
		"the slings and arrows of outrageous fortune",
		"or to take arms against a sea of troubles",
	}
	for i := 0; i < 200; i++ {
		if err := w.Write(nil, []byte(lines[i%len(lines)])); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// Figure 4: tokenizer --scatter/gather--> summation.
	d := dag.New("wordcount")
	tokenizer := d.AddVertex("tokenizer",
		plugin.Desc(library.MapProcessorName, library.FuncConfig{Func: "wc.tokenize"}), -1)
	tokenizer.Sources = []dag.DataSource{{
		Name:  "text",
		Input: plugin.Desc(library.DFSSourceInputName, nil),
		Initializer: plugin.Desc(library.SplitInitializerName, library.SplitSourceConfig{
			Paths: []string{"/input/shakespeare"},
		}),
	}}
	summation := d.AddVertex("summation",
		plugin.Desc(library.ReduceProcessorName, library.FuncConfig{Func: "wc.sum"}), 4)
	summation.Sinks = []dag.DataSink{{
		Name:      "counts",
		Output:    plugin.Desc(library.DFSSinkOutputName, library.DFSSinkConfig{Path: "/output/wc"}),
		Committer: plugin.Desc(library.DFSCommitterName, library.DFSSinkConfig{Path: "/output/wc"}),
	}}
	d.Connect(tokenizer, summation, dag.EdgeProperty{
		Movement: dag.ScatterGather,
		Output:   plugin.Desc(library.OrderedPartitionedOutputName, nil),
		Input:    plugin.Desc(library.OrderedGroupedInputName, nil),
	})

	// Run it in a Tez session.
	sess := am.NewSession(plat, am.Config{Name: "quickstart"})
	defer sess.Close()
	res, err := sess.Run(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DAG %s in %v\n", res.Status, res.Duration.Round(0))
	fmt.Printf("counters: %s\n\n", res.Counters)

	// Read the committed output back.
	type wc struct {
		word string
		n    int
	}
	var counts []wc
	for _, f := range plat.FS.List("/output/wc/part-") {
		data, err := plat.FS.ReadFile(f, "")
		if err != nil {
			log.Fatal(err)
		}
		r := library.NewBufferReader(data)
		for r.Next() {
			n, _ := strconv.Atoi(string(r.Value()))
			counts = append(counts, wc{string(r.Key()), n})
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].n > counts[j].n })
	fmt.Println("top words:")
	for i, c := range counts {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-10s %d\n", c.word, c.n)
	}
}
