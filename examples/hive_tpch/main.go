// hive_tpch: a TPC-H-style SQL query planned by the mini-Hive engine and
// executed twice — as a chain of MapReduce-shaped jobs (the pre-Tez Hive
// execution model) and as one Tez DAG with broadcast joins and runtime
// reduce-parallelism — printing the results and the timing contrast the
// paper's Figure 9 quantifies.
//
//	go run ./examples/hive_tpch
package main

import (
	"fmt"
	"log"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/hive"
	"tez/internal/platform"
	"tez/internal/relop"
)

const q3 = `
SELECT c.c_mktsegment, sum(l.l_extendedprice) AS revenue, count(*) AS items
FROM lineitem l
JOIN orders o ON l.l_orderkey = o.o_orderkey
JOIN customer c ON o.o_custkey = c.c_custkey
WHERE o.o_orderdate < 19960101
GROUP BY c.c_mktsegment
ORDER BY revenue DESC`

func main() {
	plat := platform.New(platform.Default(8))
	defer plat.Stop()

	fmt.Println("generating TPC-H-shaped tables…")
	tp, err := data.GenTPCH(plat.FS, 1500, 7)
	if err != nil {
		log.Fatal(err)
	}
	eng := hive.NewEngine()
	eng.Exec = relop.Config{DefaultPartitions: 8}
	eng.Register(tp.Tables()...)

	fmt.Printf("\nquery:%s\n\n", q3)

	// Pre-Tez execution: a chain of MR jobs, materialised through the DFS.
	start := time.Now()
	stats, err := eng.RunMR(plat, am.Config{Name: "hive-mr"}, "q3-mr", q3, "/results/q3-mr")
	if err != nil {
		log.Fatal(err)
	}
	mrDur := time.Since(start)
	fmt.Printf("Hive on MapReduce: %v (%d jobs, each with its own AM and cold containers)\n",
		mrDur.Round(time.Millisecond), stats.Jobs)

	// Tez execution: one DAG in a pre-warmed session.
	sess := am.NewSession(plat, am.Config{Name: "hive-tez", PrewarmContainers: 4})
	defer sess.Close()
	start = time.Now()
	if _, err := eng.RunTez(sess, "q3-tez", q3, "/results/q3-tez"); err != nil {
		log.Fatal(err)
	}
	tezDur := time.Since(start)
	fmt.Printf("Hive on Tez:       %v (single DAG, broadcast joins, container reuse)\n",
		tezDur.Round(time.Millisecond))
	fmt.Printf("speedup:           %.2fx\n\n", float64(mrDur)/float64(tezDur))

	rows, err := relop.ReadStored(plat.FS, "/results/q3-tez")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result (both backends agree):")
	fmt.Printf("  %-12s %14s %8s\n", "segment", "revenue", "items")
	for _, r := range rows {
		fmt.Printf("  %-12s %14.2f %8d\n", r[0].Str, r[1].AsFloat(), r[2].AsInt())
	}
}
