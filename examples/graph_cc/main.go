// graph_cc: connected components by min-label propagation (HashMin) on
// the BSP graph engine. Pure vote-to-halt termination: every vertex halts
// each superstep and is reawakened only by a smaller incoming label, so
// the session loop ends the moment no label moves.
//
//	go run ./examples/graph_cc
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"tez/internal/am"
	"tez/internal/graph"
	"tez/internal/platform"
)

func main() {
	plat := platform.New(platform.Default(4))
	defer plat.Stop()

	// Three islands of very different sizes, each a ring with chords, plus
	// a sprinkle of isolated vertices.
	g := graph.NewGraph()
	addIsland := func(base, n int64, seed int64) {
		island := graph.Generate(int(n), 4, seed)
		for _, id := range island.VertexIDs() {
			for _, e := range island.Edges(id) {
				if err := g.AddUndirectedEdge(base+id, base+e.To, 1); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	addIsland(0, 3000, 1)
	addIsland(10000, 500, 2)
	addIsland(20000, 40, 3)
	for i := int64(0); i < 5; i++ {
		if err := g.AddVertex(30000 + i); err != nil {
			log.Fatal(err)
		}
	}

	sess := am.NewSession(plat, am.Config{
		Name:                 "cc",
		PrewarmContainers:    2,
		ContainerIdleRelease: 500 * time.Millisecond,
	})
	defer sess.Close()

	start := time.Now()
	res, err := graph.Run(sess, plat, graph.Job{
		Name:    "cc",
		Program: graph.CCProgram,
		Graph:   g,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d vertices labelled in %d supersteps (%v), converged=%v\n\n",
		len(res.Values), res.Supersteps, time.Since(start).Round(time.Millisecond), res.Converged)

	sizes := map[int64]int{}
	for _, label := range res.Values {
		sizes[int64(label)]++
	}
	labels := make([]int64, 0, len(sizes))
	for l := range sizes {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return sizes[labels[i]] > sizes[labels[j]] })
	fmt.Printf("found %d components:\n", len(sizes))
	for i, l := range labels {
		if i == 8 {
			fmt.Printf("  … and %d more singletons\n", len(labels)-i)
			break
		}
		fmt.Printf("  component min-id %5d: %5d vertices\n", l, sizes[l])
	}
}
