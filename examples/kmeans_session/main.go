// kmeans_session: the iterative K-means workload of Figure 11. Every
// iteration is a fresh 2-vertex DAG; submitted to one shared, pre-warmed
// Tez session the iterations reuse containers (and skip AM start-up),
// against a baseline that pays a fresh AM per iteration.
//
//	go run ./examples/kmeans_session
package main

import (
	"fmt"
	"log"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/platform"
	"tez/internal/sparklike"
)

func main() {
	plat := platform.New(platform.Default(4))
	defer plat.Stop()

	const points, iters = 4000, 10
	fmt.Printf("generating %d points around 3 centres…\n", points)
	tbl, truth, err := data.GenPoints(plat.FS, "points", points, 3, 99)
	if err != nil {
		log.Fatal(err)
	}
	initial := make([][2]float64, len(truth))
	for i, c := range truth {
		initial[i] = [2]float64{c[0] + 5, c[1] - 5}
	}

	start := time.Now()
	if _, err := sparklike.RunKMeansIsolated(plat, am.Config{Name: "km-iso"},
		tbl, initial, iters, "/scratch/iso"); err != nil {
		log.Fatal(err)
	}
	isoDur := time.Since(start)
	fmt.Printf("%d iterations, one AM per iteration:   %v\n", iters, isoDur.Round(time.Millisecond))

	sess := am.NewSession(plat, am.Config{
		Name:                 "km-session",
		PrewarmContainers:    2,
		ContainerIdleRelease: 500 * time.Millisecond,
	})
	defer sess.Close()
	start = time.Now()
	centroids, err := sparklike.RunKMeans(sess, plat, tbl, initial, iters, "/scratch/sess")
	if err != nil {
		log.Fatal(err)
	}
	sessDur := time.Since(start)
	fmt.Printf("%d iterations, shared pre-warmed session: %v\n", iters, sessDur.Round(time.Millisecond))
	fmt.Printf("speedup from session + container reuse:  %.2fx\n\n", float64(isoDur)/float64(sessDur))

	alloc, reused := sess.SchedulerStats()
	fmt.Printf("session scheduler: %d containers allocated, %d task assignments reused one\n\n", alloc, reused)

	fmt.Println("final centroids (true centres in parentheses):")
	for i, c := range centroids {
		fmt.Printf("  (%7.2f, %7.2f)   (%7.2f, %7.2f)\n", c[0], c[1], truth[i][0], truth[i][1])
	}
}
