// graph_pagerank: PageRank as a Pregel-style vertex program compiled onto
// session DAGs. Each superstep is one compute→inbox DAG in a shared,
// pre-warmed session: containers are reused across supersteps, graph
// partitions stay cached in the per-container object registry (only the
// messages move), and the run stops as soon as the summed rank delta drops
// under epsilon.
//
//	go run ./examples/graph_pagerank
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"tez/internal/am"
	"tez/internal/graph"
	"tez/internal/platform"
)

func main() {
	plat := platform.New(platform.Default(4))
	defer plat.Stop()

	const vertices = 4000
	fmt.Printf("generating a %d-vertex graph (ring + random chords)…\n", vertices)
	g := graph.Generate(vertices, 6, 42)

	sess := am.NewSession(plat, am.Config{
		Name:                 "pagerank",
		PrewarmContainers:    2,
		ContainerIdleRelease: 500 * time.Millisecond,
	})
	defer sess.Close()

	start := time.Now()
	res, err := graph.Run(sess, plat, graph.Job{
		Name:          "pagerank",
		Program:       graph.PageRankProgram,
		ProgramConfig: graph.PageRankConfig{Damping: 0.85, Epsilon: 1e-7},
		Graph:         g,
		Partitions:    4,
		MaxSupersteps: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v after %d supersteps in %v (final Σ|Δrank| = %.2e)\n\n",
		res.Converged, res.Supersteps, time.Since(start).Round(time.Millisecond),
		res.Aggregates["pr.delta"])

	fmt.Println("superstep   active     sent  combined  reg-hits  cold  wall")
	for _, s := range res.Stats {
		fmt.Printf("   %3d     %6d  %7d   %7d     %3d     %3d  %v\n",
			s.Superstep, s.Active, s.Sent, s.Sent-s.Delivered,
			s.RegistryHits, s.ColdLoads, s.Wall.Round(time.Millisecond))
	}

	type ranked struct {
		id   int64
		rank float64
	}
	top := make([]ranked, 0, len(res.Values))
	for id, r := range res.Values {
		top = append(top, ranked{id, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("\ntop 5 vertices by rank:")
	for _, r := range top[:5] {
		fmt.Printf("  vertex %5d  rank %.6f\n", r.id, r.rank)
	}
}
