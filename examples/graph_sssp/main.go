// graph_sssp: single-source shortest paths by Bellman-Ford-style
// relaxation on the BSP graph engine. The frontier of reawakened vertices
// shrinks superstep by superstep — watch the active-vertex column — and
// the min-combiner collapses parallel relaxations of the same vertex both
// map-side and at the inbox.
//
//	go run ./examples/graph_sssp
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"tez/internal/am"
	"tez/internal/graph"
	"tez/internal/platform"
)

func main() {
	plat := platform.New(platform.Default(4))
	defer plat.Stop()

	const vertices = 3000
	g := graph.Generate(vertices, 5, 17)

	sess := am.NewSession(plat, am.Config{
		Name:                 "sssp",
		PrewarmContainers:    2,
		ContainerIdleRelease: 500 * time.Millisecond,
	})
	defer sess.Close()

	const source = 0
	start := time.Now()
	res, err := graph.Run(sess, plat, graph.Job{
		Name:          "sssp",
		Program:       graph.SSSPProgram,
		ProgramConfig: graph.SSSPConfig{Source: source},
		Graph:         g,
		MaxSupersteps: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shortest paths from vertex %d in %d supersteps (%v), converged=%v\n\n",
		source, res.Supersteps, time.Since(start).Round(time.Millisecond), res.Converged)

	fmt.Println("superstep  active-frontier  messages")
	for _, s := range res.Stats {
		fmt.Printf("   %3d        %6d        %7d\n", s.Superstep, s.Active, s.Sent)
	}

	var reachable int
	var maxDist, sum float64
	for _, d := range res.Values {
		if math.IsInf(d, 1) {
			continue
		}
		reachable++
		sum += d
		if d > maxDist {
			maxDist = d
		}
	}
	fmt.Printf("\n%d/%d vertices reachable, eccentricity %.2f, mean distance %.2f\n",
		reachable, len(res.Values), maxDist, sum/float64(reachable))
}
