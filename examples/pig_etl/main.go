// pig_etl: a multi-output ETL pipeline in the Pig-style dataflow API
// (§5.3): shared scan, split, join, aggregation, a skew-mitigated join
// over Zipf keys and a sampled global order-by — all in one Tez DAG.
//
//	go run ./examples/pig_etl
package main

import (
	"fmt"
	"log"
	"time"

	"tez/internal/am"
	"tez/internal/data"
	"tez/internal/pig"
	"tez/internal/platform"
	"tez/internal/relop"
	"tez/internal/row"
)

func main() {
	plat := platform.New(platform.Default(8))
	defer plat.Stop()

	fmt.Println("generating skewed event logs…")
	events, err := data.GenZipfPairs(plat.FS, "events", 8000, 300, 1.3, 3)
	if err != nil {
		log.Fatal(err)
	}
	// One profile row per user id.
	users := &relop.Table{Name: "users", Schema: row.NewSchema("k:int", "v:int")}
	var profiles []row.Row
	for u := int64(0); u < 300; u++ {
		profiles = append(profiles, row.Row{row.Int(u), row.Int(u * 7)})
	}
	if err := relop.WriteTable(plat.FS, users, 2, profiles); err != nil {
		log.Fatal(err)
	}

	build := func(suffix string) *pig.Script {
		s := pig.NewScript("etl")
		ev := s.Load(events) // (k: user id, v: event id)
		usr := s.Load(users) // (k: user id, v: profile id)

		// SPLIT: head users vs long tail, sharing one scan.
		branches := ev.Split(
			relop.Cmp("<", ev.Col("k"), relop.LitInt(10)),
			relop.Cmp(">=", ev.Col("k"), relop.LitInt(10)),
		)
		hot := branches[0].GroupBy([]*relop.Expr{branches[0].Col("k")}, []string{"k"},
			[]relop.AggDef{{Func: "count", Name: "events"}})
		s.Store(hot, "/out/hot-users"+suffix)

		// Skew join: the event log is Zipf-distributed, so the runtime
		// histogram re-partitions both sides with balanced ranges.
		joined := ev.SkewJoin(usr, []*relop.Expr{ev.Col("k")}, []*relop.Expr{usr.Col("k")}, 6)
		perUser := joined.GroupBy([]*relop.Expr{relop.Col(0)}, []string{"user"},
			[]relop.AggDef{{Func: "count", Name: "n"}})
		s.Store(perUser, "/out/per-user"+suffix)

		// Global order-by via sample-based range partitioning.
		top := perUser.OrderBy([]*relop.Expr{perUser.Col("n")}, []bool{true}, 15, 4)
		s.Store(top, "/out/top-users"+suffix)
		return s
	}

	// MR baseline: job chain with DFS materialisation between stages.
	start := time.Now()
	stats, err := build("-mr").RunMR(plat, am.Config{Name: "pig-mr"})
	if err != nil {
		log.Fatal(err)
	}
	mrDur := time.Since(start)
	fmt.Printf("Pig on MapReduce: %v (%d jobs)\n", mrDur.Round(time.Millisecond), stats.Jobs)

	// Tez: the whole script is one DAG.
	sess := am.NewSession(plat, am.Config{Name: "pig-tez", PrewarmContainers: 4})
	defer sess.Close()
	start = time.Now()
	res, err := build("-tez").RunTez(sess)
	if err != nil {
		log.Fatal(err)
	}
	tezDur := time.Since(start)
	fmt.Printf("Pig on Tez:       %v (1 DAG, %d vertices)\n",
		tezDur.Round(time.Millisecond), res.Counters.Get("VERTICES_SUCCEEDED"))
	fmt.Printf("speedup:          %.2fx\n\n", float64(mrDur)/float64(tezDur))

	top, err := relop.ReadStored(plat.FS, "/out/top-users-tez")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("busiest users (globally ordered):")
	for i, r := range top {
		if i >= 10 {
			break
		}
		printRow(r)
	}
}

func printRow(r row.Row) {
	fmt.Printf("  user %-6v %v events\n", r[0], r[1])
}
