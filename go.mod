module tez

go 1.22
